#include "simdlint/include_graph.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace simdlint {

namespace {

// The layering DAG, mirrored from src/CMakeLists.txt and the diagram in
// docs/static-analysis.md.  A module may include any module of a *strictly
// lower* rank (and itself); the rank-5 domain modules are siblings that must
// stay independent of each other.
constexpr std::pair<const char*, int> kModuleRanks[] = {
    {"common", 0},   {"sanitizer", 1}, {"simd", 2},   {"search", 3},
    {"fault", 4},    {"synthetic", 5}, {"puzzle", 5}, {"queens", 5},
    {"tsp", 5},      {"mimd", 5},      {"vec", 6},    {"lb", 7},
    {"baselines", 8}, {"runtime", 9},  {"analysis", 10}, {"service", 10},
    // Scoped entry for the standalone tooling: tools/ may depend on any
    // library layer, but no src/ module may ever include tools/ headers.
    {"tools", 99},
};

}  // namespace

std::vector<IncludeEdge> quoted_includes(const SourceFile& file) {
  std::vector<IncludeEdge> out;
  const std::string& code = file.code;
  const std::string& raw = file.raw;
  const std::size_t n = code.size();
  std::size_t i = 0;
  std::size_t line = 1;
  // Directive-internal whitespace includes backslash-newline continuations:
  // `#include \<newline>    "foo.hpp"` is one logical directive, attributed
  // to the line the `#` sits on.
  auto skip_ws = [&](std::size_t j) {
    while (j < n) {
      if (code[j] == ' ' || code[j] == '\t') {
        ++j;
      } else if (code[j] == '\\' && j + 1 < n && code[j + 1] == '\n') {
        j += 2;
      } else if (code[j] == '\\' && j + 2 < n && code[j + 1] == '\r' &&
                 code[j + 2] == '\n') {
        j += 3;
      } else {
        break;
      }
    }
    return j;
  };
  auto at_directive_end = [&](std::size_t j) {
    return j >= n || code[j] == '\n' || code[j] == '\r' || code[j] == ' ' ||
           code[j] == '\t' || code[j] == '/';
  };
  // Nesting depth of the innermost `#if 0` region.  Includes inside a
  // disabled block are dead text, not edges; `#else`/`#elif` directly under
  // the `#if 0` re-enables the tail, and its closing `#endif` is absorbed.
  int if0_depth = 0;
  while (i < n) {
    std::size_t j = skip_ws(i);
    if (j < n && code[j] == '#') {
      j = skip_ws(j + 1);
      if (if0_depth > 0) {
        if (code.compare(j, 2, "if") == 0 && (code.compare(j, 5, "ifdef") == 0 ||
                                              code.compare(j, 6, "ifndef") == 0 ||
                                              at_directive_end(j + 2))) {
          ++if0_depth;
        } else if (code.compare(j, 5, "endif") == 0) {
          --if0_depth;
        } else if (if0_depth == 1 && (code.compare(j, 4, "else") == 0 ||
                                      code.compare(j, 4, "elif") == 0)) {
          if0_depth = 0;
        }
      } else if (code.compare(j, 2, "if") == 0 && at_directive_end(j + 2)) {
        const std::size_t k = skip_ws(j + 2);
        if (k < n && code[k] == '0' && at_directive_end(k + 1)) if0_depth = 1;
      } else if (code.compare(j, 7, "include") == 0) {
        j = skip_ws(j + 7);
        if (j < n && code[j] == '"') {
          // The path characters are blanked in `code` (string contents), but
          // blanking preserves byte offsets, so read them back from `raw`.
          const std::size_t open = j + 1;
          std::size_t close = open;
          while (close < n && raw[close] != '"' && raw[close] != '\n') {
            ++close;
          }
          if (close < n && raw[close] == '"') {
            out.push_back(IncludeEdge{line, raw.substr(open, close - open)});
          }
        }
      }
    }
    while (i < n && code[i] != '\n') ++i;
    if (i < n) {
      ++i;
      ++line;
    }
  }
  return out;
}

std::string module_of(const std::string& path) {
  std::string p = path;
  if (p.compare(0, 4, "src/") == 0) p = p.substr(4);
  const std::size_t slash = p.find('/');
  if (slash == std::string::npos || slash == 0) return "";
  return p.substr(0, slash);
}

int module_rank(const std::string& module) {
  for (const auto& [name, rank] : kModuleRanks) {
    if (module == name) return rank;
  }
  return -1;
}

namespace {

class LayeringRule final : public Rule {
 public:
  std::string id() const override { return "layering"; }
  std::string summary() const override {
    return "src/ modules must respect the layering DAG: no include of a "
           "higher layer, no include between sibling domain modules";
  }
  bool applies(const std::string& path) const override {
    // tools/ participates as the rank-99 sink: free to include any library
    // layer, while a src/ include of "tools/..." fires as a violation.
    return path_in_dir(path, "src") || path_in_dir(path, "tools");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const std::string from_mod = module_of(f.path);
    const int from_rank = module_rank(from_mod);
    if (from_rank < 0) return;
    for (const IncludeEdge& e : quoted_includes(f)) {
      // A bare filename is a same-directory include; module includes in this
      // repo are always "module/file.hpp" relative to src/.
      if (e.target.find('/') == std::string::npos) continue;
      const std::string to_mod = module_of(e.target);
      const int to_rank = module_rank(to_mod);
      if (to_rank < 0 || to_mod == from_mod) continue;
      if (to_rank == from_rank || to_rank > from_rank) {
        Finding finding;
        finding.rule = id();
        finding.path = f.path;
        finding.line = e.line;
        std::ostringstream os;
        if (to_rank > from_rank) {
          os << "layering violation: " << from_mod << " (rank " << from_rank
             << ") includes \"" << e.target << "\" from higher-ranked "
             << to_mod << " (rank " << to_rank << ")";
        } else {
          os << "layering violation: sibling domain modules " << from_mod
             << " and " << to_mod
             << " must stay independent (both rank " << from_rank << ")";
        }
        finding.message = os.str();
        finding.excerpt = f.line_text(e.line);
        out.push_back(std::move(finding));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_layering_rule() {
  return std::make_unique<LayeringRule>();
}

std::vector<Finding> find_include_cycles(const std::vector<SourceFile>& files) {
  // Index the src/ files by path and build the quoted-include graph,
  // resolving "module/file.hpp" targets against the src/ root.  Targets not
  // in the file set (system headers, unlinted files) contribute no edge.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (path_in_dir(files[i].path, "src")) index.emplace(files[i].path, i);
  }
  struct Edge {
    std::size_t to;
    std::size_t line;
  };
  std::map<std::size_t, std::vector<Edge>> graph;
  for (const auto& [path, i] : index) {
    for (const IncludeEdge& e : quoted_includes(files[i])) {
      const auto it = index.find("src/" + e.target);
      if (it != index.end()) {
        graph[i].push_back(Edge{it->second, e.line});
      }
    }
  }

  // Iterative DFS with the usual three colors; a back edge to a grey node
  // closes a cycle, read off the explicit stack.  Each distinct cycle is
  // keyed by its rotation starting at the smallest path, so revisits from
  // different roots report it once.
  enum class Color { kWhite, kGrey, kBlack };
  std::map<std::size_t, Color> color;
  for (const auto& [path, i] : index) color[i] = Color::kWhite;

  std::set<std::string> seen_cycles;
  std::vector<Finding> out;

  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  std::vector<Frame> stack;

  auto report_cycle = [&](const std::vector<std::size_t>& cycle) {
    // Rotate so the smallest path leads.
    std::size_t lead = 0;
    for (std::size_t k = 1; k < cycle.size(); ++k) {
      if (files[cycle[k]].path < files[cycle[lead]].path) lead = k;
    }
    std::vector<std::size_t> rotated;
    rotated.reserve(cycle.size());
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      rotated.push_back(cycle[(lead + k) % cycle.size()]);
    }
    std::ostringstream chain;
    for (const std::size_t node : rotated) chain << files[node].path << " -> ";
    chain << files[rotated[0]].path;
    if (!seen_cycles.insert(chain.str()).second) return;

    Finding f;
    f.rule = "include-cycle";
    f.path = files[rotated[0]].path;
    f.line = 0;
    for (const Edge& e : graph[rotated[0]]) {
      if (e.to == rotated[1 % rotated.size()]) {
        f.line = e.line;
        break;
      }
    }
    f.message = "include cycle: " + chain.str();
    f.excerpt = f.line != 0 ? files[rotated[0]].line_text(f.line) : "";
    out.push_back(std::move(f));
  };

  for (const auto& [path, root] : index) {
    if (color[root] != Color::kWhite) continue;
    stack.push_back(Frame{root, 0});
    color[root] = Color::kGrey;
    while (!stack.empty()) {
      Frame& top = stack.back();
      const std::vector<Edge>& edges = graph[top.node];
      if (top.next_edge < edges.size()) {
        const std::size_t to = edges[top.next_edge++].to;
        if (color[to] == Color::kWhite) {
          color[to] = Color::kGrey;
          stack.push_back(Frame{to, 0});
        } else if (color[to] == Color::kGrey) {
          // Grey means on the current DFS stack: the frames from `to` up to
          // the top are the cycle.
          std::size_t k = stack.size();
          while (k > 0 && stack[k - 1].node != to) --k;
          std::vector<std::size_t> cycle;
          for (std::size_t m = k - 1; m < stack.size(); ++m) {
            cycle.push_back(stack[m].node);
          }
          report_cycle(cycle);
        }
      } else {
        color[top.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    return a.message < b.message;
  });
  return out;
}

}  // namespace simdlint
