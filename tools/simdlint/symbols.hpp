// simdlint v3: symbol extraction — function definitions and their outgoing
// calls, recovered from the blanked-code token stream.
//
// This is the front half of the cross-TU effect analysis (effects.hpp): a
// single forward walk over each file's tokens that tracks namespace / class
// nesting, recognizes function definitions (free functions, in-class and
// out-of-class member definitions, with the enclosing qualification
// reconstructed: `simdts::lb::Engine::expand_cycle`), and records for each
// body
//
//   * every outgoing call site (bare `foo(`, qualified `a::b::foo(`, and
//     member `x.foo(` / `x->foo(` with the receiver kept for diagnostics),
//   * every *intrinsic* effect use — tokens whose effect needs no call
//     resolution: non-placement `new`, lock/condvar types, host-I/O names,
//     nondeterminism sources, and `throw` (classified typed/untyped by the
//     repo convention that typed error classes end in "Error"),
//   * whether the signature is `noexcept` and whether the body contains a
//     `try` block (which stops throw propagation in the analysis).
//
// Like every other simdlint layer this is a token heuristic, not a parse:
// lambdas attribute to their enclosing function, operators and macro bodies
// are skipped, and the residue is handled by the annotation mechanisms in
// effects.hpp rather than suppression comments.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "simdlint/lexer.hpp"

namespace simdlint {

/// One outgoing call site inside a function body.
struct CallSite {
  std::string written;    // callee as written, "::"-joined: "a::b::foo"
  std::string last_name;  // last component: "foo"
  std::string receiver;   // receiver identifier for member calls, if simple
  bool has_receiver = false;   // x.foo(...) / x->foo(...)
  bool receiver_this = false;  // this->foo(...)
  bool std_qualified = false;  // std::foo(...) or __-prefixed qualifier
  std::size_t line = 0;        // 1-based line of the callee name
};

/// A direct (call-free) effect use inside a function body.
struct IntrinsicUse {
  std::string effect;  // "allocates", "locks", "does-io", "nondet",
                       // "throws-untyped", "throws"
  std::string detail;  // what to show in the witness: "operator new", ...
  std::size_t line = 0;
};

/// One function definition recovered from a file.
struct FunctionDef {
  std::string qualified;   // "simdts::lb::Engine::expand_cycle"
  std::string short_name;  // "expand_cycle"
  std::string path;        // repo-relative path of the defining file
  std::size_t line = 0;      // line of the declarator name token
  std::size_t sig_line = 0;  // first line of the signature
  bool is_noexcept = false;  // signature carries noexcept (not noexcept(false))
  bool is_static = false;  // `static` in the signature: never the target of a
                           // receiver call like `p.foo(...)`
  bool has_try = false;      // body contains a try block
  std::vector<CallSite> calls;
  std::vector<IntrinsicUse> intrinsics;
  std::set<std::string> regions;  // inline SIMDLINT-REGION kinds attached
  std::vector<std::size_t> region_mark_lines;  // marker lines consumed
  std::set<std::string> merges;   // inline SIMDLINT-MERGE kinds attached
  std::vector<std::size_t> merge_mark_lines;   // marker lines consumed
  /// Parameter names, in declaration order ("" for unnamed/unrecovered
  /// slots) — the taint analysis maps tainted call arguments onto these.
  std::vector<std::string> params;
  /// Raw indices into SourceFile::tokens of the body's '{' and '}' (both 0
  /// when the body was not delimited).  The taint analysis re-walks this
  /// range at token level; consumers must skip preproc-flagged tokens, as
  /// the extraction walk does.
  std::size_t body_open = 0;
  std::size_t body_close = 0;
};

/// Extract every function definition of `file`, in source order.  Inline
/// SIMDLINT-REGION markers on the line above or within the signature attach
/// to the function; unconsumed markers are reported by the effect analysis.
std::vector<FunctionDef> extract_functions(const SourceFile& file);

}  // namespace simdlint
