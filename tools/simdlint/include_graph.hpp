// simdlint v2: include-graph analysis — module layering and cycle detection.
//
// The library's modules form a DAG (documented in src/CMakeLists.txt): lower
// layers never include higher ones, and sibling domain modules (puzzle,
// queens, tsp, ...) never include each other.  Token rules cannot see this —
// it is a property of the `#include` edges — so this layer parses the quoted
// includes out of each lexed file, checks every edge against the rank table
// (rule "layering", per file, registered in default_rules()), and runs a DFS
// over the whole parsed file set for include cycles (rule "include-cycle",
// cross-file, driven from main.cpp after the per-file pass).
//
// The rank table below is the authoritative machine-readable form of the
// layering diagram in docs/static-analysis.md; keep the two in sync.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "simdlint/lexer.hpp"
#include "simdlint/rules.hpp"

namespace simdlint {

/// One quoted `#include "..."` directive.  Angle-bracket includes carry no
/// layering information (they are system headers) and are not collected.
struct IncludeEdge {
  std::size_t line = 0;  // 1-based line of the directive
  std::string target;    // include path, verbatim ("lb/engine.hpp")
};

/// The quoted includes of `file`, in source order.  Extracted from the
/// lexer's blanked `code` view (so a "#include" inside a comment or string
/// never counts) with the path text recovered from `raw` at the same byte
/// offsets (blanking preserves offsets exactly).
std::vector<IncludeEdge> quoted_includes(const SourceFile& file);

/// The module ("lb", "simd", ...) of a path: the first component after an
/// optional "src/" prefix, when at least one more component follows.  Empty
/// for paths outside the module tree ("src/foo.hpp", "main.cpp").
std::string module_of(const std::string& path);

/// Layer rank of a module name, or -1 when the module is not in the table.
/// Lower ranks must never include higher ones; equal ranks on *different*
/// modules (the sibling domain layers) must not include each other.
int module_rank(const std::string& module);

/// The "layering" rule for default_rules(): checks every quoted include of a
/// src/ file against the rank table.
std::unique_ptr<Rule> make_layering_rule();

/// Cross-file pass: DFS over the quoted-include graph of the src/ files in
/// `files`, reporting one "include-cycle" finding per distinct cycle,
/// anchored at the lexicographically smallest participating path.  Findings
/// are not SIMDLINT-ALLOW-suppressible (a cycle has no single owning line)
/// but respect the baseline like any other rule.
std::vector<Finding> find_include_cycles(const std::vector<SourceFile>& files);

}  // namespace simdlint
