// simdlint v4: interprocedural determinism-taint dataflow (D7).
//
// The repo's core claim — the lockstep SIMD model yields the *same* work and
// solutions regardless of how lanes are mapped to host threads — is a
// dataflow property: no *partition-derived* value (worker index, word-range
// begin/end bound, `hardware_concurrency`, task slot index) may flow into
// *result-bearing* state (RunStats/IterationStats accumulation, CSV/journal/
// response-log emission, cache keys, GridPoint fields) except through an
// annotated order-independent merge.  The golden 1/2/8-thread CSV diffs test
// this dynamically; this pass proves it statically over the v3 cross-TU call
// graph (symbols.hpp, callgraph.hpp).
//
// Sources:
//   * inline SIMDLINT-SOURCE markers of kind `partition` taint the
//     identifiers declared on the marker's line and the next two (the
//     convention is to put the marker directly above the lane/bound
//     parameters of a partitioned worker body);
//   * `source <qualified-suffix>` conf entries taint the return value of
//     matching repo definitions and of matching external calls as written
//     (`std::thread::hardware_concurrency`).
//
// Propagation (token-level, flow-insensitive per function, monotone to a
// global fixpoint):
//   * assignments (`=`, compound `+=`), increments, and mutating member
//     calls (push_back, resize, ...) with a tainted right-hand side taint
//     their target — locals per function, member fields globally by name;
//   * control taint: every write inside a loop/branch whose condition (or
//     range) reads a tainted value is tainted — the partition bound decides
//     *how many times* the body runs, so even `+= 1` in it is
//     partition-dependent (the motivating "missed += into a word-partitioned
//     loop" bug);
//   * calls propagate taint through parameters (tainted argument position k
//     taints the callee's k-th parameter) and return values; an unresolved
//     external call with a tainted argument is assumed to return taint;
//   * under tainted control, member-form arguments (`ls.next_bound`,
//     trailing-underscore fields) passed to any call are treated as written
//     through (out-parameter conservatism);
//   * reading `a[tainted_index]` does NOT taint the read when `a` is clean —
//     lane-indexed *selection* into per-lane state is the deterministic
//     partition idiom, not a flow (element reads of tainted containers do
//     taint).
//
// Sinks are `sink member <name>` (result-bearing fields) and
// `sink <qualified-suffix>` (result-emitting functions; a call passing them
// a tainted argument is a hit).  A function carrying an inline
// SIMDLINT-MERGE marker of kind `commutative` (or a conf
// `merge commutative <suffix>` entry) is an order-independent reduction
// point: tainted member writes and sink hits inside it are justified, and
// its return value is clean.  Each merge annotation carries an in-comment
// justification, like the v3 assume entries.
//
// Rules:
//   * taint-partition-to-result — a source→sink flow bypasses every
//     justified merge; the witness joins the full provenance chain
//     ("expand_cycle: partition source 'wbegin' -> ... [partition->result]")
//     and is exported as SARIF codeFlows;
//   * merge-unjustified — a merge declares a kind other than "commutative";
//   * stale-source / stale-sink / stale-merge — a declaration that taints,
//     matches, or launders nothing.  Never baselineable; the conf-wide
//     variants are skipped under subset runs (--changed-files / explicit
//     paths), marker staleness is intra-file and always checked.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "simdlint/effects.hpp"
#include "simdlint/lexer.hpp"
#include "simdlint/rules.hpp"

namespace simdlint {

/// The taint rules, for --list-rules and the docs.
std::vector<std::pair<std::string, std::string>> taint_rule_catalog();

/// Run the determinism-taint analysis over the parsed file set.  `subset`
/// marks --changed-files / explicit-path runs (conf-wide staleness checks
/// are skipped there).  Findings carry dataflow witnesses in
/// Finding::flow; stale findings are never baselineable.
std::vector<Finding> find_taint_findings(const std::vector<SourceFile>& files,
                                         const EffectConfig& config,
                                         bool subset);

}  // namespace simdlint
