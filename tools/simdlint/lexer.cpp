#include "simdlint/lexer.hpp"

#include <cctype>

namespace simdlint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the quote at `i` opens a raw string: the identifier characters
// immediately before it must form one of the raw-string prefixes.
bool is_raw_string_open(const std::string& s, std::size_t i) {
  if (s[i] != '"') return false;
  std::size_t b = i;
  while (b > 0 && is_ident_char(s[b - 1])) --b;
  const std::string prefix = s.substr(b, i - b);
  if (b > 0 && is_ident_char(s[b - 1])) return false;
  return prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "LR" ||
         prefix == "UR";
}

// Harvest a SIMDLINT-<NAME>(a, b, ...) directive — a comma-separated list in
// parentheses — from one line's worth of comment text.  Shared by the ALLOW
// suppressions, the REGION markers, and the EFFECT-OK absolutions.
void scan_directives(const std::string& tag, const std::string& comment,
                     std::size_t line,
                     std::map<std::size_t, std::set<std::string>>& out) {
  std::size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    const std::size_t open = pos + tag.size();
    const std::size_t close = comment.find(')', open);
    pos = open;
    if (close == std::string::npos) continue;
    std::string rule;
    auto flush = [&] {
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      if (!rule.empty()) out[line].insert(rule);
      rule.clear();
    };
    for (std::size_t i = open; i < close; ++i) {
      const char c = comment[i];
      if (c == ',') {
        flush();
      } else if (c != ' ' || !rule.empty()) {
        rule.push_back(c);
      }
    }
    flush();
  }
}

}  // namespace

SourceFile SourceFile::parse(std::string path, std::string text) {
  SourceFile f;
  f.path = std::move(path);
  f.raw = std::move(text);
  f.code = f.raw;

  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  State state = State::kNormal;
  std::size_t line = 1;
  std::string raw_close;            // ")tag\"" that ends the raw string
  std::string comment_line_text;    // comment text accumulated on this line
  std::size_t comment_line = 1;     // line the accumulated text belongs to
  const std::string& s = f.raw;

  auto flush_comment_line = [&] {
    if (!comment_line_text.empty()) {
      scan_directives("SIMDLINT-ALLOW(", comment_line_text, comment_line,
                      f.allows);
      scan_directives("SIMDLINT-REGION(", comment_line_text, comment_line,
                      f.region_marks);
      scan_directives("SIMDLINT-EFFECT-OK(", comment_line_text, comment_line,
                      f.effect_ok);
      scan_directives("SIMDLINT-SOURCE(", comment_line_text, comment_line,
                      f.source_marks);
      scan_directives("SIMDLINT-MERGE(", comment_line_text, comment_line,
                      f.merge_marks);
      comment_line_text.clear();
    }
  };

  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\n') {
      flush_comment_line();
      ++line;
      comment_line = line;
      if (state == State::kLineComment) state = State::kNormal;
      continue;  // newlines survive in every state
    }
    switch (state) {
      case State::kNormal:
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
          state = State::kLineComment;
          comment_line = line;
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
          state = State::kBlockComment;
          comment_line = line;
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (is_raw_string_open(s, i)) {
          // R"tag( ... )tag" — find the delimiter, then blank to the close.
          std::size_t p = i + 1;
          std::string tag;
          while (p < s.size() && s[p] != '(') tag.push_back(s[p++]);
          raw_close = ")" + tag + "\"";
          state = State::kRawString;
          // Keep the opening quote; blank the tag and '(' so the tokenizer
          // sees an empty "" literal.
          for (std::size_t k = i + 1; k <= p && k < s.size(); ++k) {
            f.code[k] = ' ';
          }
          i = p;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !is_ident_char(s[i - 1]))) {
          // An apostrophe after an identifier/number character is a digit
          // separator (1'000), not a char literal.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        if (state == State::kBlockComment && c == '*' && i + 1 < s.size() &&
            s[i + 1] == '/') {
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
          state = State::kNormal;
        } else {
          comment_line_text.push_back(c);
          f.code[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < s.size()) {
          f.code[i] = ' ';
          if (s[i + 1] != '\n') f.code[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kNormal;  // keep the closing quote
        } else {
          f.code[i] = ' ';
        }
        break;
      }
      case State::kRawString:
        if (c == ')' && s.compare(i, raw_close.size(), raw_close) == 0) {
          // Blank ")tag", keep the closing quote.
          for (std::size_t k = i; k + 1 < i + raw_close.size(); ++k) {
            f.code[k] = ' ';
          }
          i += raw_close.size() - 1;
          state = State::kNormal;
        } else {
          f.code[i] = ' ';
        }
        break;
    }
  }
  flush_comment_line();
  f.line_count = line;

  // Mark preprocessor lines: a line whose first non-blank character in the
  // comment-stripped view is '#', plus backslash-continuation lines.
  std::vector<bool> preproc_line(line + 2, false);
  {
    std::size_t ln = 1;
    bool at_line_start = true;
    bool in_preproc = false;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const char c = f.code[i];
      if (c == '\n') {
        const bool continued = i > 0 && f.raw[i - 1] == '\\';
        if (in_preproc && !continued) in_preproc = false;
        ++ln;
        at_line_start = true;
        if (in_preproc && ln < preproc_line.size()) preproc_line[ln] = true;
        continue;
      }
      if (at_line_start && c != ' ' && c != '\t') {
        at_line_start = false;
        if (c == '#' && !in_preproc) {
          in_preproc = true;
          preproc_line[ln] = true;
        }
      }
    }
  }

  // Tokenize the blanked view.
  const std::string& code = f.code;
  std::size_t ln = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++ln;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    Token t;
    t.line = ln;
    t.preproc = ln < preproc_line.size() && preproc_line[ln];
    if (is_ident_start(c)) {
      std::size_t b = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      t.text = code.substr(b, i - b);
      t.ident = true;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // pp-number: digits, idents, quotes-as-separators, exponent signs.
      std::size_t b = i;
      while (i < code.size() &&
             (is_ident_char(code[i]) || code[i] == '\'' || code[i] == '.' ||
              ((code[i] == '+' || code[i] == '-') && i > b &&
               (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                code[i - 1] == 'p' || code[i - 1] == 'P')))) {
        ++i;
      }
      t.text = code.substr(b, i - b);
    } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      t.text = "::";
      i += 2;
    } else if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      t.text = "->";
      i += 2;
    } else {
      t.text = std::string(1, c);
      ++i;
    }
    f.tokens.push_back(std::move(t));
  }
  return f;
}

std::string SourceFile::line_text(std::size_t line1) const {
  std::size_t cur = 1;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= raw.size(); ++i) {
    if (i == raw.size() || raw[i] == '\n') {
      if (cur == line1) {
        std::size_t end = i;
        while (begin < end && (raw[begin] == ' ' || raw[begin] == '\t')) {
          ++begin;
        }
        while (end > begin &&
               (raw[end - 1] == ' ' || raw[end - 1] == '\t' ||
                raw[end - 1] == '\r')) {
          --end;
        }
        return raw.substr(begin, end - begin);
      }
      ++cur;
      begin = i + 1;
    }
  }
  return {};
}

bool SourceFile::is_header() const {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
}

}  // namespace simdlint
