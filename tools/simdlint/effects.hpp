// simdlint v3: cross-TU call-graph effect analysis.
//
// The lockstep determinism contract is a *reachability* property: nothing a
// parallel-region root can reach — across any number of translation units —
// may allocate, lock, do host I/O, read nondeterminism sources, throw
// untyped, or recurse unboundedly.  Token rules (D1–D4) only see single
// files; this layer closes the gap statically:
//
//   1. extract_functions (symbols.hpp) recovers every function definition
//      with its qualified name, outgoing calls, and intrinsic effect uses;
//   2. calls are resolved across the whole parsed file set — qualified
//      names by component-suffix match, member/bare calls by last name
//      (explicit-receiver calls never resolve to the caller itself, so
//      `problem.expand(...)` inside `BatchExpander::expand` is not fake
//      recursion); unresolved calls fall back to intrinsic tables
//      (push_back/resize → allocates, fetch_add/wait → locks, ...) and are
//      otherwise treated as effect-free (optimistic: external code is
//      trusted, repo code is analyzed);
//   3. effects propagate bottom-up over the call graph to a fixpoint;
//      call-graph cycles (SCCs) seed `unbounded-recursion`; `try` in a body
//      stops throw propagation from callees (heuristic, documented);
//   4. region roots come from tools/simdlint/effects.conf (`region
//      lockstep <suffix>`) and inline SIMDLINT-REGION markers (see
//      lexer.hpp for the comment syntax); rules fire when a root's effect
//      set intersects its forbidden set, with a call-path witness
//      ("expand_cycle -> stage_children -> ls.children.push_back
//      [allocates]") in the message.
//
// Escape hatches, each with teeth:
//   * `assume <effect> <suffix>` in the conf file strips a trusted effect
//     from a function's exported summary (e.g. the thread-pool dispatch IS
//     the lockstep cycle barrier, so its `locks` stops there); stale when
//     the function no longer has the effect → "stale-assume".
//   * an inline SIMDLINT-EFFECT-OK marker absolves intrinsic uses and call
//     edges on its own or the next line (amortized growth into
//     persistent-capacity scratch); stale when it absolves nothing →
//     "stale-effect-ok".
//   * a conf `region` entry matching no function, or an inline REGION
//     marker attached to no definition → "stale-region".
// Stale findings mirror unused-suppression: never baselineable, and the
// conf-wide checks are skipped under --changed-files / explicit-path runs
// (the full-tree `ctest -R lint.simdlint` gate stays authoritative).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "simdlint/lexer.hpp"
#include "simdlint/rules.hpp"

namespace simdlint {

struct RegionDecl {
  std::string kind;     // "lockstep" or "serial"
  std::string pattern;  // qualified-name suffix, e.g. "Engine::expand_cycle"
  std::size_t line = 0;  // conf line, for stale findings
  std::string text;      // conf line text, for excerpts
};

struct AssumeDecl {
  std::string effect;   // effect stripped from the matching summaries
  std::string pattern;  // qualified-name suffix
  std::size_t line = 0;
  std::string text;
};

struct ConfError {
  std::string message;
  std::size_t line = 0;
  std::string text;
};

/// `source <qualified-suffix>`: a function whose return value is
/// partition-derived (worker counts, lane indices).  Consumed by the taint
/// analysis (taint.hpp); matches both repo definitions and external calls
/// as written (`std::thread::hardware_concurrency`).
struct SourceDecl {
  std::string pattern;
  std::size_t line = 0;
  std::string text;
};

/// `sink member <name>` (a result-bearing member field) or
/// `sink <qualified-suffix>` (a result-emitting function: any call passing
/// it a tainted argument is a sink hit).
struct SinkDecl {
  std::string pattern;
  bool member = false;
  std::size_t line = 0;
  std::string text;
};

/// `merge <kind> <qualified-suffix>`: an order-independent reduction point
/// that launders partition taint.  Only kind "commutative" is justified;
/// any other kind parses but fires merge-unjustified.
struct MergeDecl {
  std::string kind;
  std::string pattern;
  std::size_t line = 0;
  std::string text;
};

struct EffectConfig {
  std::string path;  // repo-relative conf path, for findings
  std::vector<RegionDecl> regions;
  std::vector<AssumeDecl> assumes;
  std::vector<SourceDecl> sources;
  std::vector<SinkDecl> sinks;
  std::vector<MergeDecl> merges;
  std::vector<ConfError> errors;
};

/// Parse an effects.conf document.  Grammar (one directive per line, `#`
/// comments): `region <lockstep|serial> <qualified-suffix>`,
/// `assume <effect> <qualified-suffix>`, `source <qualified-suffix>`,
/// `sink <qualified-suffix>`, `sink member <name>`, and
/// `merge <kind> <qualified-suffix>`.
EffectConfig parse_effects_conf(std::string path, const std::string& text);

/// The cross-file effect rules, for --list-rules and the docs.
std::vector<std::pair<std::string, std::string>> effect_rule_catalog();

/// Run the whole analysis over the parsed file set.  `subset` marks
/// --changed-files / explicit-path runs: conf-wide staleness checks are
/// skipped there because the conf legitimately names functions outside the
/// subset.  Findings are not SIMDLINT-ALLOW-suppressible (reachability has
/// no single owning line); region/noexcept findings respect the baseline,
/// stale findings do not.
std::vector<Finding> find_effect_findings(const std::vector<SourceFile>& files,
                                          const EffectConfig& config,
                                          bool subset);

}  // namespace simdlint
