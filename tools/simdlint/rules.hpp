// simdlint's rule layer: project-invariant checks over lexed source files.
//
// Every reported metric in this repo (N_expand, N_lb, V(P), efficiency) is a
// deterministic function of simulated cycle/phase counts, and the test suite
// pins bit-identical CSV/journal output across host thread counts.  These
// rules machine-enforce the disciplines that keep that true:
//
//   D1 determinism  no-rand, no-wall-clock, no-unordered-io-iter,
//                   no-pointer-order
//   D2 errors       typed-errors (simdts::Error hierarchy only in src/)
//   D3 lockstep     lockstep-io (substrate code does no host I/O; all time
//                   flows through MachineClock — wall clocks are D1)
//   D4 headers      header-pragma-once, header-using-namespace
//
// Rules operate on the blanked `code` view and token stream from lexer.hpp,
// so banned tokens inside strings or comments never fire.  Findings carry a
// repo-relative path, 1-based line, and the trimmed source line as excerpt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simdlint/lexer.hpp"

namespace simdlint {

/// One hop of a dataflow witness (source→sink provenance for the taint
/// rules).  Rendered as a SARIF codeFlow so code scanning shows the path.
struct FlowStep {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string note;      // "worker_begin taints wbegin", "stats.nodes +="
};

struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string message;
  std::string excerpt;
  bool suppressed = false;  // via SIMDLINT-ALLOW on this or previous line
  bool baselined = false;   // matched an entry in the baseline file
  std::vector<FlowStep> flow;  // dataflow witness steps, source first
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string id() const = 0;
  [[nodiscard]] virtual std::string summary() const = 0;
  /// Whether this rule runs on the given repo-relative path at all.
  [[nodiscard]] virtual bool applies(const std::string& path) const = 0;
  virtual void check(const SourceFile& file,
                     std::vector<Finding>& out) const = 0;
};

/// The full rule set this repo enforces.
std::vector<std::unique_ptr<Rule>> default_rules();

/// Run every applicable rule over `file`, apply SIMDLINT-ALLOW suppressions,
/// and report ALLOW directives that suppressed nothing (rule
/// "unused-suppression").  Findings are sorted by (line, rule).
std::vector<Finding> lint_file(const SourceFile& file,
                               const std::vector<std::unique_ptr<Rule>>& rules);

/// Path helpers shared by rules and the driver ('/'-separated paths).
bool path_in_dir(const std::string& path, const std::string& dir);

}  // namespace simdlint
