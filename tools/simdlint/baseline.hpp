// simdlint's baseline layer: accepted findings that don't fail the build.
//
// A baseline lets the linter land in a tree with pre-existing findings and
// still gate *new* ones: every finding is reduced to a stable fingerprint —
// rule id, repo-relative path, a hash of the trimmed source line, and an
// occurrence index among identical lines — so findings survive unrelated
// line-number drift but die with the code that caused them.  The file is
// machine-written JSON (`--write-baseline`); the reader is deliberately
// tolerant and only extracts fingerprints.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "simdlint/rules.hpp"

namespace simdlint {

/// Stable identity of a finding. `occurrence` disambiguates repeated
/// identical lines within one file (0-based, in line order).
std::string fingerprint(const Finding& f, std::size_t occurrence);

/// Assign occurrence indices and fingerprints for a full, sorted finding
/// list (all files).  Returns fingerprints parallel to `findings`.
std::vector<std::string> fingerprints(const std::vector<Finding>& findings);

/// Read a baseline file previously written by write_baseline.
std::set<std::string> load_baseline(std::istream& in);

/// Write the (unsuppressed) findings as a baseline JSON document.
void write_baseline(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace simdlint
