#include "simdlint/report.hpp"

#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "simdlint/baseline.hpp"

namespace simdlint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << std::hex << static_cast<int>(static_cast<unsigned char>(c));
          const std::string u = os.str();
          out += "\\u";
          out.append(4 - u.size(), '0');
          out += u;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

ReportStats tally(const std::vector<Finding>& findings, std::size_t files) {
  ReportStats s;
  s.files = files;
  s.total = findings.size();
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++s.suppressed;
    } else if (f.baselined) {
      ++s.baselined;
    } else {
      ++s.active;
    }
  }
  return s;
}

void text_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats, bool verbose) {
  for (const Finding& f : findings) {
    if (f.suppressed && !verbose) continue;
    if (f.baselined && !verbose) continue;
    out << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message;
    if (f.suppressed) out << " (suppressed)";
    if (f.baselined) out << " (baselined)";
    out << '\n';
    if (!f.excerpt.empty()) out << "    " << f.excerpt << '\n';
  }
  out << "simdlint: " << stats.active << " finding"
      << (stats.active == 1 ? "" : "s") << " (" << stats.suppressed
      << " suppressed, " << stats.baselined << " baselined) across "
      << stats.files << " file" << (stats.files == 1 ? "" : "s") << '\n';
}

void json_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats) {
  out << "{\n  \"version\": 1,\n  \"tool\": \"simdlint\",\n  \"summary\": {"
      << "\"files\": " << stats.files << ", \"total\": " << stats.total
      << ", \"active\": " << stats.active
      << ", \"suppressed\": " << stats.suppressed
      << ", \"baselined\": " << stats.baselined << "},\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"message\": \"" << json_escape(f.message)
        << "\", \"excerpt\": \"" << json_escape(f.excerpt)
        << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
}

void sarif_report(std::ostream& out, const std::vector<Finding>& findings,
                  const ReportStats& stats) {
  (void)stats;
  // Rule descriptors: the distinct ids among reported findings, in sorted
  // order so ruleIndex assignment is byte-stable.
  std::set<std::string> rule_set;
  for (const Finding& f : findings) {
    if (!f.suppressed && !f.baselined) rule_set.insert(f.rule);
  }
  const std::vector<std::string> rules(rule_set.begin(), rule_set.end());
  auto rule_index = [&rules](const std::string& id) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == id) return i;
    }
    return rules.size();
  };
  const std::vector<std::string> fps = fingerprints(findings);

  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"simdlint\",\n"
         "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n            {\"id\": \"" << json_escape(rules[i]) << "\"}";
  }
  out << (rules.empty() ? "]" : "\n          ]")
      << "\n        }\n      },\n      \"results\": [";
  bool first = true;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (f.suppressed || f.baselined) continue;
    if (!first) out << ",";
    first = false;
    // SARIF regions are 1-based; cross-file findings without an owning line
    // (include cycles) anchor at line 1.
    const std::size_t line = f.line == 0 ? 1 : f.line;
    out << "\n        {\n"
           "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
           "          \"ruleIndex\": " << rule_index(f.rule) << ",\n"
           "          \"level\": \"error\",\n"
           "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
           "          \"locations\": [\n"
           "            {\n"
           "              \"physicalLocation\": {\n"
           "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.path) << "\"},\n"
           "                \"region\": {\"startLine\": " << line << "}\n"
           "              }\n"
           "            }\n"
           "          ],\n";
    // Dataflow witnesses (the taint rules) export the full source→sink path
    // as a codeFlow so code scanning renders each hop.
    if (!f.flow.empty()) {
      out << "          \"codeFlows\": [\n"
             "            {\n"
             "              \"threadFlows\": [\n"
             "                {\n"
             "                  \"locations\": [";
      for (std::size_t s = 0; s < f.flow.size(); ++s) {
        const FlowStep& step = f.flow[s];
        if (s > 0) out << ",";
        out << "\n                    {\"location\": {\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << json_escape(step.path)
            << "\"}, \"region\": {\"startLine\": "
            << (step.line == 0 ? 1 : step.line)
            << "}}, \"message\": {\"text\": \"" << json_escape(step.note)
            << "\"}}}";
      }
      out << "\n                  ]\n"
             "                }\n"
             "              ]\n"
             "            }\n"
             "          ],\n";
    }
    out << "          \"partialFingerprints\": {\"simdlintFingerprint/v1\": \""
        << json_escape(fps[i]) << "\"}\n        }";
  }
  out << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
}

}  // namespace simdlint
