#include "simdlint/report.hpp"

#include <ostream>
#include <sstream>

namespace simdlint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << std::hex << static_cast<int>(static_cast<unsigned char>(c));
          const std::string u = os.str();
          out += "\\u";
          out.append(4 - u.size(), '0');
          out += u;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

ReportStats tally(const std::vector<Finding>& findings, std::size_t files) {
  ReportStats s;
  s.files = files;
  s.total = findings.size();
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++s.suppressed;
    } else if (f.baselined) {
      ++s.baselined;
    } else {
      ++s.active;
    }
  }
  return s;
}

void text_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats, bool verbose) {
  for (const Finding& f : findings) {
    if (f.suppressed && !verbose) continue;
    if (f.baselined && !verbose) continue;
    out << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message;
    if (f.suppressed) out << " (suppressed)";
    if (f.baselined) out << " (baselined)";
    out << '\n';
    if (!f.excerpt.empty()) out << "    " << f.excerpt << '\n';
  }
  out << "simdlint: " << stats.active << " finding"
      << (stats.active == 1 ? "" : "s") << " (" << stats.suppressed
      << " suppressed, " << stats.baselined << " baselined) across "
      << stats.files << " file" << (stats.files == 1 ? "" : "s") << '\n';
}

void json_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats) {
  out << "{\n  \"version\": 1,\n  \"tool\": \"simdlint\",\n  \"summary\": {"
      << "\"files\": " << stats.files << ", \"total\": " << stats.total
      << ", \"active\": " << stats.active
      << ", \"suppressed\": " << stats.suppressed
      << ", \"baselined\": " << stats.baselined << "},\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"message\": \"" << json_escape(f.message)
        << "\", \"excerpt\": \"" << json_escape(f.excerpt)
        << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace simdlint
