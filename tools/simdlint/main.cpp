// simdlint CLI — determinism & lockstep-discipline linting for this repo.
//
// Usage:
//   simdlint [--repo-root DIR] [--baseline FILE] [--write-baseline FILE]
//            [--changed-files FILE] [--json FILE|-] [--format NAME]
//            [--effects-conf FILE] [--list-rules] [--verbose] [paths...]
//
// With no paths, lints the default roots (src bench tests tools examples)
// under the repo root.  --changed-files restricts the run to the
// newline-separated repo-relative paths in FILE (missing/deleted and
// non-C++ entries are skipped) — the CI lint job feeds it the PR's diff;
// note the cross-file passes (include cycles, call-graph effects) then only
// see that subset and conf-wide staleness checks are skipped, so the
// full-tree run behind `ctest -R lint.simdlint` remains the authoritative
// gate.  --format selects the stdout report: text (default), json, or sarif
// (SARIF 2.1.0, for GitHub code-scanning upload).
// Exit status: 0 when no *active* findings remain after SIMDLINT-ALLOW
// suppressions and the baseline; 1 when active findings exist; 2 on usage
// or I/O errors.  File discovery and reporting are byte-deterministic:
// paths are walked in sorted order.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "simdlint/baseline.hpp"
#include "simdlint/effects.hpp"
#include "simdlint/include_graph.hpp"
#include "simdlint/lexer.hpp"
#include "simdlint/report.hpp"
#include "simdlint/rules.hpp"
#include "simdlint/taint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultRoots[] = {"src", "bench", "tests", "tools",
                                         "examples"};

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".hxx";
}

bool skip_dir(const std::string& name) {
  return name.empty() || name[0] == '.' ||
         name.compare(0, 5, "build") == 0 || name == "CMakeFiles";
}

std::string to_repo_rel(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(p, ec)) {
    if (lintable_extension(p)) out.push_back(p);
    return;
  }
  if (!fs::is_directory(p, ec)) return;
  for (fs::recursive_directory_iterator it(p, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    const fs::path& entry = it->path();
    if (it->is_directory(ec)) {
      if (skip_dir(entry.filename().string())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && lintable_extension(entry)) {
      out.push_back(entry);
    }
  }
}

int usage(std::ostream& out, int code) {
  out << "usage: simdlint [options] [paths...]\n"
         "  --repo-root DIR        root for rule scoping (default: .)\n"
         "  --baseline FILE        accept findings listed in FILE\n"
         "  --write-baseline FILE  write current findings as the baseline\n"
         "  --changed-files FILE   lint only the repo-relative paths listed\n"
         "                         in FILE (one per line; missing or non-C++\n"
         "                         entries are skipped)\n"
         "  --json FILE|-          write a JSON report (- for stdout)\n"
         "  --format NAME          stdout report format: text (default),\n"
         "                         json, or sarif (SARIF 2.1.0)\n"
         "  --effects-conf FILE    region/assume annotations for the effect\n"
         "                         analysis (default:\n"
         "                         <repo-root>/tools/simdlint/effects.conf)\n"
         "  --list-rules           print the rule catalog and exit\n"
         "  --verbose              show suppressed and baselined findings\n"
         "  -h, --help             this message\n";
  return code;
}

// Findings that must be *fixed*, never grandfathered: a stale directive or
// annotation hides future regressions, so the baseline does not apply.
bool never_baselined(const std::string& rule) {
  return rule == "unused-suppression" || rule == "stale-region" ||
         rule == "stale-assume" || rule == "stale-effect-ok" ||
         rule == "effects-conf-error" || rule == "stale-source" ||
         rule == "stale-sink" || rule == "stale-merge";
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string changed_files_path;
  std::string json_path;
  std::string effects_conf_path;
  std::string format = "text";
  bool verbose = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "simdlint: " << flag << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--repo-root") {
      repo_root = next("--repo-root");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline_path = next("--write-baseline");
    } else if (arg == "--changed-files") {
      changed_files_path = next("--changed-files");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--effects-conf") {
      effects_conf_path = next("--effects-conf");
    } else if (arg == "--format") {
      format = next("--format");
    } else if (arg.compare(0, 9, "--format=") == 0) {
      format = arg.substr(9);
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : simdlint::default_rules()) {
        std::cout << rule->id() << "\n    " << rule->summary() << "\n";
      }
      std::cout << "include-cycle\n    cross-file pass: the quoted-include "
                   "graph of src/ must stay acyclic\n";
      for (const auto& [id, summary] : simdlint::effect_rule_catalog()) {
        std::cout << id << "\n    " << summary << "\n";
      }
      for (const auto& [id, summary] : simdlint::taint_rule_catalog()) {
        std::cout << id << "\n    " << summary << "\n";
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "simdlint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      inputs.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "simdlint: unknown --format '" << format << "'\n";
    return usage(std::cerr, 2);
  }

  const fs::path root(repo_root);
  std::vector<fs::path> files;
  if (!changed_files_path.empty()) {
    std::ifstream in(changed_files_path, std::ios::binary);
    if (!in) {
      std::cerr << "simdlint: cannot read " << changed_files_path << "\n";
      return 2;
    }
    std::string entry;
    while (std::getline(in, entry)) {
      while (!entry.empty() && (entry.back() == '\r' || entry.back() == ' ')) {
        entry.pop_back();
      }
      if (entry.empty()) continue;
      fs::path p(entry);
      if (p.is_relative()) p = root / p;
      std::error_code ec;
      // Deleted files still appear in diffs; skip anything that is gone or
      // not a lintable C++ file rather than erroring the whole run.
      if (!fs::is_regular_file(p, ec) || !lintable_extension(p)) continue;
      files.push_back(p);
    }
  } else if (inputs.empty()) {
    for (const char* d : kDefaultRoots) {
      collect_files(root / d, files);
    }
  } else {
    for (const std::string& in : inputs) {
      fs::path p(in);
      if (p.is_relative() && !fs::exists(p)) p = root / in;
      collect_files(p, files);
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const auto rules = simdlint::default_rules();
  std::vector<simdlint::Finding> findings;
  std::vector<simdlint::SourceFile> parsed_files;
  parsed_files.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "simdlint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    parsed_files.push_back(
        simdlint::SourceFile::parse(to_repo_rel(file, root), text.str()));
    auto file_findings = simdlint::lint_file(parsed_files.back(), rules);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  // Cross-file passes: include cycles and call-graph effects can only be
  // seen over the whole parsed set (with --changed-files or explicit paths
  // this is a subset — the full-tree ctest run stays authoritative, and the
  // conf-wide staleness checks are skipped in subset mode).
  const bool subset = !changed_files_path.empty() || !inputs.empty();
  {
    auto cycle_findings = simdlint::find_include_cycles(parsed_files);
    findings.insert(findings.end(),
                    std::make_move_iterator(cycle_findings.begin()),
                    std::make_move_iterator(cycle_findings.end()));
  }
  {
    fs::path conf_file = effects_conf_path.empty()
                             ? root / "tools" / "simdlint" / "effects.conf"
                             : fs::path(effects_conf_path);
    simdlint::EffectConfig config;
    std::ifstream in(conf_file, std::ios::binary);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      config = simdlint::parse_effects_conf(to_repo_rel(conf_file, root),
                                            text.str());
    } else if (!effects_conf_path.empty()) {
      std::cerr << "simdlint: cannot read effects conf " << conf_file << "\n";
      return 2;
    }
    // A missing default conf means no declared regions: the analysis still
    // runs (inline markers, noexcept contracts) with an empty config.
    auto effect_findings =
        simdlint::find_effect_findings(parsed_files, config, subset);
    findings.insert(findings.end(),
                    std::make_move_iterator(effect_findings.begin()),
                    std::make_move_iterator(effect_findings.end()));
    auto taint_findings =
        simdlint::find_taint_findings(parsed_files, config, subset);
    findings.insert(findings.end(),
                    std::make_move_iterator(taint_findings.begin()),
                    std::make_move_iterator(taint_findings.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const simdlint::Finding& a, const simdlint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "simdlint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    simdlint::write_baseline(out, findings);
    std::cout << "simdlint: wrote baseline with " << findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "simdlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    const std::set<std::string> accepted = simdlint::load_baseline(in);
    const std::vector<std::string> fps = simdlint::fingerprints(findings);
    for (std::size_t i = 0; i < findings.size(); ++i) {
      // A stale SIMDLINT-ALLOW / region annotation must be *removed*, never
      // grandfathered: those findings stay active even when baselined, so
      // the lint gate fails until the directive is deleted.
      if (never_baselined(findings[i].rule)) continue;
      if (!findings[i].suppressed && accepted.count(fps[i]) > 0) {
        findings[i].baselined = true;
      }
    }
  }

  const simdlint::ReportStats stats = simdlint::tally(findings, files.size());
  if (format == "sarif") {
    simdlint::sarif_report(std::cout, findings, stats);
  } else if (format == "json") {
    simdlint::json_report(std::cout, findings, stats);
  } else {
    simdlint::text_report(std::cout, findings, stats, verbose);
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      simdlint::json_report(std::cout, findings, stats);
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::cerr << "simdlint: cannot write " << json_path << "\n";
        return 2;
      }
      simdlint::json_report(out, findings, stats);
    }
  }
  return stats.active == 0 ? 0 : 1;
}
