#include "simdlint/symbols.hpp"

#include <cctype>
#include <cstddef>
#include <deque>

namespace simdlint {

namespace {

// All scanning runs on a filtered view of the token stream that drops
// preprocessor-line tokens: macro definition bodies must not contribute
// braces (an unbalanced `#define BEGIN {` would corrupt the scope stack) or
// phantom calls to the enclosing function.
struct View {
  const std::vector<Token>& all;
  std::vector<std::size_t> idx;

  explicit View(const std::vector<Token>& tokens) : all(tokens) {
    idx.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!tokens[i].preproc) idx.push_back(i);
    }
  }
  [[nodiscard]] const Token& operator[](std::size_t i) const {
    return all[idx[i]];
  }
  [[nodiscard]] std::size_t size() const { return idx.size(); }
  /// Raw index into SourceFile::tokens of view position `i`.
  [[nodiscard]] std::size_t raw_index(std::size_t i) const { return idx[i]; }
};

bool vtok_is(const View& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

std::ptrdiff_t vmatch_paren_back(const View& t, std::ptrdiff_t close) {
  int depth = 0;
  for (std::ptrdiff_t k = close; k >= 0; --k) {
    const std::string& s = t[static_cast<std::size_t>(k)].text;
    if (s == ")") {
      ++depth;
    } else if (s == "(") {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

std::size_t vmatch_forward(const View& t, std::size_t open, const char* o,
                           const char* c) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (t[k].text == o) {
      ++depth;
    } else if (t[k].text == c) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

// Skip a `> ... <` template-argument group scanning backward from `k` (which
// points at '>').  Returns the index before the matching '<', or -1.
std::ptrdiff_t skip_template_back(const View& t, std::ptrdiff_t k) {
  int depth = 0;
  for (; k >= 0; --k) {
    const std::string& s = t[static_cast<std::size_t>(k)].text;
    if (s == ">") {
      ++depth;
    } else if (s == "<") {
      if (--depth == 0) return k - 1;
    } else if (s == ";" || s == "{" || s == "}") {
      return -1;
    }
  }
  return -1;
}

const std::set<std::string>& decoration_tokens() {
  static const std::set<std::string> kDecoration = {
      "const", "noexcept", "override", "final", "mutable", "&",
      "*",     "::",       "->",       ",",     "<",       ">",
      "requires",
  };
  return kDecoration;
}

// Scan back from `from` over signature decorations (const, noexcept,
// trailing return types, ...) to the ')' closing the parameter list.  A
// `noexcept(expr)` / `requires(expr)` group is stepped over.  Returns -1
// when no parameter-list close is in reach.
std::ptrdiff_t declarator_close(const View& t, std::ptrdiff_t from) {
  std::ptrdiff_t k = from;
  int budget = 80;
  while (k >= 0 && budget-- > 0) {
    const std::string& s = t[static_cast<std::size_t>(k)].text;
    if (s == ")") {
      const std::ptrdiff_t open = vmatch_paren_back(t, k);
      if (open < 0) return -1;
      if (open > 0) {
        const std::string& before = t[static_cast<std::size_t>(open - 1)].text;
        if (before == "noexcept" || before == "requires") {
          k = open - 1;
          continue;
        }
      }
      return k;
    }
    if (!(t[static_cast<std::size_t>(k)].ident ||
          decoration_tokens().count(s) > 0 ||
          std::isdigit(static_cast<unsigned char>(s[0])) != 0)) {
      return -1;
    }
    --k;
  }
  return -1;
}

// Tokens that close a parameter segment without being the parameter name.
const std::set<std::string>& type_only_tokens() {
  static const std::set<std::string> kNames = {
      "void", "int",   "unsigned", "signed",   "char", "bool",    "float",
      "double", "long", "short",   "auto",     "const", "volatile",
  };
  return kNames;
}

// Recover the parameter names of the list delimited by view indices
// (open, close) — both pointing at the parentheses.  Each top-level
// comma-separated segment contributes its last identifier that is not a
// qualifier prefix (next token is neither an identifier nor "::"/"<") and
// not a bare type keyword; unnamed slots contribute "".
std::vector<std::string> param_names(const View& t, std::ptrdiff_t open,
                                     std::ptrdiff_t close) {
  std::vector<std::string> out;
  if (open < 0 || close <= open + 1) return out;
  int paren = 0;
  int angle = 0;
  int brace = 0;
  std::string name;
  bool defaulted = false;  // saw a top-level '=': name is already fixed
  auto flush = [&] {
    out.push_back(type_only_tokens().count(name) > 0 ? std::string() : name);
    name.clear();
    defaulted = false;
  };
  for (std::ptrdiff_t k = open + 1; k < close; ++k) {
    const std::string& s = t[static_cast<std::size_t>(k)].text;
    if (s == "(" || s == "[") {
      ++paren;
    } else if (s == ")" || s == "]") {
      --paren;
    } else if (s == "{") {
      ++brace;
    } else if (s == "}") {
      --brace;
    } else if (s == "<") {
      ++angle;
    } else if (s == ">") {
      if (angle > 0) --angle;
    } else if (s == "," && paren == 0 && angle == 0 && brace == 0) {
      flush();
      continue;
    } else if (s == "=" && paren == 0 && angle == 0 && brace == 0) {
      defaulted = true;
    } else if (!defaulted && paren == 0 && angle == 0 && brace == 0 &&
               t[static_cast<std::size_t>(k)].ident) {
      const std::size_t n = static_cast<std::size_t>(k) + 1;
      const bool qualifier = n < t.size() && (t[n].ident || t[n].text == "::" ||
                                              t[n].text == "<");
      if (!qualifier) name = s;
    }
  }
  flush();
  return out;
}

// Names that a declarator heuristic can land on which are never function
// names.
const std::set<std::string>& non_function_names() {
  static const std::set<std::string> kNames = {
      "if",       "for",     "while",   "switch", "catch",  "return",
      "decltype", "sizeof",  "alignof", "noexcept", "requires",
      "constexpr", "static_assert",
  };
  return kNames;
}

struct NameChain {
  std::vector<std::string> components;  // e.g. {"Engine", "expand_cycle"}
  std::ptrdiff_t begin = -1;            // view index of the first chain token
  std::size_t name_line = 0;            // line of the last component
};

// Recover the declarator name chain ending at `end` (the token just before
// the parameter-list '('): `name`, `Class::name`, `ns::Class<T>::name`,
// `~Name`, `Class::operator==`.  Empty components when `end` is not a name.
NameChain name_chain(const View& t, std::ptrdiff_t end) {
  NameChain out;
  std::deque<std::string> parts;
  std::ptrdiff_t k = end;
  if (k < 0) return out;

  if (!t[static_cast<std::size_t>(k)].ident) {
    // Possibly `operator==` / `operator()`: symbol tokens then "operator".
    std::string symbol;
    int budget = 3;
    while (k >= 0 && budget-- > 0 && !t[static_cast<std::size_t>(k)].ident) {
      symbol = t[static_cast<std::size_t>(k)].text + symbol;
      --k;
    }
    if (k < 0 || t[static_cast<std::size_t>(k)].text != "operator") return out;
    parts.push_front("operator" + symbol);
    out.name_line = t[static_cast<std::size_t>(k)].line;
    --k;
  } else {
    std::string name = t[static_cast<std::size_t>(k)].text;
    out.name_line = t[static_cast<std::size_t>(k)].line;
    --k;
    if (k >= 0 && t[static_cast<std::size_t>(k)].text == "~") {
      name = "~" + name;
      --k;
    }
    parts.push_front(name);
  }

  // Walk the `Qual::`* prefix, stepping over template argument lists.
  while (k >= 1 && t[static_cast<std::size_t>(k)].text == "::") {
    std::ptrdiff_t q = k - 1;
    if (t[static_cast<std::size_t>(q)].text == ">") {
      q = skip_template_back(t, q);
      if (q < 0) break;
    }
    if (q < 0 || !t[static_cast<std::size_t>(q)].ident) break;
    parts.push_front(t[static_cast<std::size_t>(q)].text);
    k = q - 1;
  }

  out.begin = k + 1;
  out.components.assign(parts.begin(), parts.end());
  return out;
}

enum class BraceKind { kNamespace, kType, kFunction, kLoop, kBlock, kOther };

struct Classified {
  BraceKind kind = BraceKind::kOther;
  std::string scope_name;       // namespace / type name
  NameChain chain;              // function declarator, for kFunction
  std::ptrdiff_t decl_close = -1;  // ')' of the parameter list
};

// Find the ':' opening a constructor initializer list between the real
// declarator and `from`, scanning backward at brace/paren depth 0.  Returns
// the index of the ':' or -1.
std::ptrdiff_t ctor_init_colon(const View& t, std::ptrdiff_t from) {
  std::ptrdiff_t j = from;
  int pdepth = 0;
  int budget = 300;
  while (j >= 0 && budget-- > 0) {
    const std::string& s = t[static_cast<std::size_t>(j)].text;
    if (s == ";") break;
    if (s == ")") {
      ++pdepth;
    } else if (s == "(") {
      --pdepth;
    } else if (s == "}" && pdepth == 0) {
      // Match back to the opening '{' and look at what precedes it: an
      // identifier means a member brace-init (`b_{y}`) the scan can step
      // over; anything else means this is a code body (e.g. the previous
      // function's `{}`) — there is no init list between it and `from`.
      int depth = 1;
      std::ptrdiff_t k = j - 1;
      while (k >= 0 && depth > 0 && budget-- > 0) {
        const std::string& u = t[static_cast<std::size_t>(k)].text;
        if (u == "}") {
          ++depth;
        } else if (u == "{") {
          --depth;
        }
        --k;
      }
      if (depth != 0 || k < 0 || !t[static_cast<std::size_t>(k)].ident ||
          non_function_names().count(t[static_cast<std::size_t>(k)].text) >
              0) {
        return -1;
      }
      j = k + 1;  // resume at the member name introducing the brace-init
    } else if (s == "{" && pdepth == 0) {
      break;  // enclosing scope opener: no colon before the declarator
    } else if (s == ":" && pdepth == 0) {
      // Only a ctor-init colon when it directly follows the parameter list
      // (possibly via noexcept); `public:` and friends do not qualify.
      if (j > 0) {
        const std::string& before = t[static_cast<std::size_t>(j - 1)].text;
        if (before == ")" || before == "noexcept") return j;
      }
      return -1;
    }
    --j;
  }
  return -1;
}

Classified classify_brace(const View& t, std::size_t i) {
  Classified out;
  if (i == 0) return out;
  const std::string& prev = t[i - 1].text;
  if (prev == "do" || prev == "else" || prev == "try") {
    out.kind = BraceKind::kBlock;
    return out;
  }

  // `namespace a::b {` / anonymous `namespace {`.
  {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    std::deque<std::string> parts;
    while (k >= 0 && (t[static_cast<std::size_t>(k)].ident ||
                      t[static_cast<std::size_t>(k)].text == "::")) {
      if (t[static_cast<std::size_t>(k)].text == "namespace") {
        out.kind = BraceKind::kNamespace;
        std::string joined;
        for (const std::string& p : parts) {
          if (!joined.empty()) joined += "::";
          joined += p;
        }
        out.scope_name = joined;
        return out;
      }
      if (t[static_cast<std::size_t>(k)].ident) {
        parts.push_front(t[static_cast<std::size_t>(k)].text);
      }
      --k;
    }
  }

  // Function-ish: `...) {`, with decorations or a ctor initializer list
  // between the parameter list and the brace.
  std::ptrdiff_t close = declarator_close(t, static_cast<std::ptrdiff_t>(i) - 1);
  if (close >= 0) {
    const std::ptrdiff_t open = vmatch_paren_back(t, close);
    if (open >= 0) {
      const std::string kw =
          open > 0 ? t[static_cast<std::size_t>(open - 1)].text : "";
      if (kw == "for" || kw == "while") {
        out.kind = BraceKind::kLoop;
        return out;
      }
      if (kw == "if" || kw == "switch" || kw == "catch" || kw == "constexpr") {
        out.kind = BraceKind::kBlock;
        return out;
      }
      if (kw == "]") {
        out.kind = BraceKind::kFunction;  // lambda: attributed to encloser
        return out;
      }
      NameChain chain = name_chain(t, open - 1);
      // The candidate may be the last entry of a ctor initializer list
      // (`Engine(...) : a_(x), b_(y) {`): look for the introducing ':' and
      // re-derive the declarator from before it.
      const std::ptrdiff_t colon =
          ctor_init_colon(t, chain.begin >= 0 ? chain.begin - 1
                                              : open - 1);
      if (colon > 0) {
        const std::ptrdiff_t real_close = declarator_close(t, colon - 1);
        if (real_close >= 0) {
          const std::ptrdiff_t real_open = vmatch_paren_back(t, real_close);
          if (real_open > 0) {
            chain = name_chain(t, real_open - 1);
            close = real_close;
          }
        }
      }
      if (!chain.components.empty() &&
          non_function_names().count(chain.components.back()) == 0) {
        out.kind = BraceKind::kFunction;
        out.chain = std::move(chain);
        out.decl_close = close;
        return out;
      }
      if (!chain.components.empty()) {
        out.kind = BraceKind::kBlock;
        return out;
      }
    }
  }

  // `struct X : A, B {`, `enum class E : std::uint8_t {`.
  {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    int budget = 100;
    while (k >= 0 && budget-- > 0) {
      const std::string& s = t[static_cast<std::size_t>(k)].text;
      if (s == ";" || s == "{" || s == "}" || s == ")" || s == "=") break;
      if (s == "struct" || s == "class" || s == "union" || s == "enum") {
        out.kind = BraceKind::kType;
        for (std::size_t n = static_cast<std::size_t>(k) + 1; n < i; ++n) {
          if (t[n].ident && t[n].text != "class" && t[n].text != "final" &&
              t[n].text != "alignas") {
            out.scope_name = t[n].text;
            break;
          }
        }
        return out;
      }
      --k;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Intrinsic effect tables (token-level; call-shaped intrinsics like
// push_back are resolved in effects.cpp where repo definitions can win).
// ---------------------------------------------------------------------------

const std::set<std::string>& lock_type_names() {
  static const std::set<std::string> kNames = {
      "mutex",          "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "lock_guard",     "unique_lock",     "scoped_lock",
      "shared_lock",    "condition_variable", "condition_variable_any",
  };
  return kNames;
}

const std::set<std::string>& io_names() {
  static const std::set<std::string> kNames = {
      "cout",    "cerr",  "clog",    "printf", "fprintf", "fputs",
      "fwrite",  "fopen", "freopen", "fscanf", "scanf",   "ofstream",
      "ifstream", "fstream", "getenv", "putenv", "setenv", "system",
  };
  return kNames;
}

const std::set<std::string>& nondet_idents() {
  static const std::set<std::string> kNames = {
      "rand",    "srand",   "rand_r",  "drand48", "lrand48",
      "mrand48", "erand48", "random_shuffle", "random_device",
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get", "localtime", "gmtime",
  };
  return kNames;
}

const std::set<std::string>& nondet_call_names() {
  static const std::set<std::string> kNames = {"time", "clock"};
  return kNames;
}

// Identifiers that look like calls but never are.
const std::set<std::string>& never_calls() {
  static const std::set<std::string> kNames = {
      "if",       "for",      "while",    "switch",  "return", "sizeof",
      "alignof",  "alignas",  "case",     "catch",   "new",    "delete",
      "throw",    "defined",  "decltype", "noexcept", "requires",
      "static_assert", "operator", "typeid",
  };
  return kNames;
}

// Identifier-ish previous tokens after which an identifier is still a call
// (not a declaration): `return foo(...)`, `co_return f(...)`, ...
const std::set<std::string>& prev_allows_call() {
  static const std::set<std::string> kNames = {
      "return", "throw", "else",    "do",       "case",
      "co_return", "co_await", "co_yield", "and", "or", "not",
  };
  return kNames;
}

void collect_call(const View& t, std::size_t i, FunctionDef& fn) {
  CallSite call;
  call.line = t[i].line;
  call.last_name = t[i].text;
  if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
    call.has_receiver = true;
    if (i >= 2 && t[i - 2].ident) {
      call.receiver = t[i - 2].text;
      call.receiver_this = t[i - 2].text == "this";
    }
    call.written = call.last_name;
  } else if (i > 0 && t[i - 1].text == "::") {
    std::deque<std::string> parts;
    parts.push_front(t[i].text);
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    while (k >= 1 && t[static_cast<std::size_t>(k)].text == "::") {
      std::ptrdiff_t q = k - 1;
      if (t[static_cast<std::size_t>(q)].text == ">") {
        q = skip_template_back(t, q);
        if (q < 0) break;
      }
      if (q < 0 || !t[static_cast<std::size_t>(q)].ident) break;
      parts.push_front(t[static_cast<std::size_t>(q)].text);
      k = q - 1;
    }
    std::string joined;
    for (const std::string& p : parts) {
      if (!joined.empty()) joined += "::";
      joined += p;
    }
    call.written = joined;
    call.std_qualified =
        parts.front() == "std" || parts.front().compare(0, 2, "__") == 0;
  } else {
    if (i > 0) {
      const Token& p = t[i - 1];
      if (p.ident && prev_allows_call().count(p.text) == 0) return;
      if (p.text == "*" || p.text == "&") return;
    }
    call.written = call.last_name;
  }
  fn.calls.push_back(std::move(call));
}

void scan_body_token(const View& t, std::size_t i, FunctionDef& fn) {
  const Token& tok = t[i];
  if (!tok.ident) return;
  const bool member_access =
      i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");

  if (tok.text == "try") {
    fn.has_try = true;
    return;
  }

  if (tok.text == "new") {
    if (i > 0 && t[i - 1].text == "operator") return;
    if (vtok_is(t, i + 1, "(")) return;  // placement new: no allocation
    fn.intrinsics.push_back({"allocates", "operator new", tok.line});
    return;
  }

  if (tok.text == "throw") {
    if (vtok_is(t, i + 1, ";")) return;  // bare rethrow inside a handler
    // The thrown type is the last identifier before the constructor '(' /
    // '{'; the repo convention is that typed error classes end in "Error".
    std::string type_name;
    for (std::size_t k = i + 1; k < t.size() && k < i + 40; ++k) {
      const std::string& s = t[k].text;
      if (s == ";" || s == "(" || s == "{") break;
      if (t[k].ident) type_name = s;
    }
    const bool typed = type_name.size() >= 5 &&
                       type_name.compare(type_name.size() - 5, 5, "Error") == 0;
    if (!typed) {
      fn.intrinsics.push_back(
          {"throws-untyped",
           type_name.empty() ? "throw" : "throw " + type_name, tok.line});
    }
    fn.intrinsics.push_back(
        {"throws", type_name.empty() ? "throw" : "throw " + type_name,
         tok.line});
    return;
  }

  if (!member_access) {
    if (lock_type_names().count(tok.text) > 0) {
      fn.intrinsics.push_back({"locks", "std::" + tok.text, tok.line});
      return;
    }
    if (io_names().count(tok.text) > 0) {
      fn.intrinsics.push_back({"does-io", tok.text, tok.line});
      return;
    }
    if (nondet_idents().count(tok.text) > 0) {
      fn.intrinsics.push_back({"nondet", tok.text, tok.line});
      return;
    }
    if (nondet_call_names().count(tok.text) > 0 && vtok_is(t, i + 1, "(")) {
      const bool plain =
          i == 0 || (!t[i - 1].ident && t[i - 1].text != "." &&
                     t[i - 1].text != "->" && t[i - 1].text != "::") ||
          (i > 0 && t[i - 1].ident &&
           prev_allows_call().count(t[i - 1].text) > 0);
      const bool std_q = i >= 2 && t[i - 1].text == "::" &&
                         t[i - 2].text == "std";
      if (plain || std_q) {
        fn.intrinsics.push_back({"nondet", tok.text + "()", tok.line});
        return;
      }
    }
  }

  if (never_calls().count(tok.text) > 0) return;

  // Call site: `name(...)` or `name<T...>(...)`.
  if (vtok_is(t, i + 1, "(")) {
    collect_call(t, i, fn);
  } else if (vtok_is(t, i + 1, "<")) {
    const std::size_t close = vmatch_forward(t, i + 1, "<", ">");
    if (close < t.size() && close < i + 24 && vtok_is(t, close + 1, "(")) {
      collect_call(t, i, fn);
    }
  }
}

}  // namespace

std::vector<FunctionDef> extract_functions(const SourceFile& file) {
  const View t(file.tokens);
  std::vector<FunctionDef> out;

  struct Scope {
    BraceKind kind;
    std::string name;
    bool fn_body = false;  // the body brace of the outermost function
  };
  std::vector<Scope> stack;
  std::ptrdiff_t current_fn = -1;

  auto scope_prefix = [&stack]() {
    std::string joined;
    for (const Scope& s : stack) {
      if ((s.kind == BraceKind::kNamespace || s.kind == BraceKind::kType) &&
          !s.name.empty()) {
        if (!joined.empty()) joined += "::";
        joined += s.name;
      }
    }
    return joined;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      Classified c = classify_brace(t, i);
      bool fn_body = false;
      if (c.kind == BraceKind::kFunction && current_fn < 0 &&
          !c.chain.components.empty()) {
        FunctionDef fn;
        fn.path = file.path;
        fn.short_name = c.chain.components.back();
        fn.line = c.chain.name_line;

        std::string qualified = scope_prefix();
        for (const std::string& p : c.chain.components) {
          if (!qualified.empty()) qualified += "::";
          qualified += p;
        }
        fn.qualified = std::move(qualified);

        // Signature start: back to the previous top-level terminator, so
        // `template <...>` intros and multi-line signatures are covered.
        // `static` anywhere in that prefix marks a static member.
        {
          std::ptrdiff_t k =
              c.chain.begin >= 0 ? c.chain.begin : static_cast<std::ptrdiff_t>(i);
          int budget = 200;
          while (k > 0 && budget-- > 0) {
            const std::string& s = t[static_cast<std::size_t>(k - 1)].text;
            if (s == ";" || s == "}" || s == "{") break;
            if (s == "static") fn.is_static = true;
            --k;
          }
          fn.sig_line = t[static_cast<std::size_t>(k)].line;
        }

        // noexcept between the parameter list and the brace (but not
        // noexcept(false)).
        for (std::ptrdiff_t k = c.decl_close + 1;
             k >= 0 && k < static_cast<std::ptrdiff_t>(i); ++k) {
          if (t[static_cast<std::size_t>(k)].text != "noexcept") continue;
          if (vtok_is(t, static_cast<std::size_t>(k) + 1, "(") &&
              vtok_is(t, static_cast<std::size_t>(k) + 2, "false") &&
              vtok_is(t, static_cast<std::size_t>(k) + 3, ")")) {
            continue;
          }
          fn.is_noexcept = true;
        }

        // Inline region markers on the line above or within the signature.
        const std::size_t lo = fn.sig_line > 1 ? fn.sig_line - 1 : 1;
        const std::size_t hi = t[i].line;
        for (auto it = file.region_marks.lower_bound(lo);
             it != file.region_marks.end() && it->first <= hi; ++it) {
          fn.regions.insert(it->second.begin(), it->second.end());
          fn.region_mark_lines.push_back(it->first);
        }
        for (auto it = file.merge_marks.lower_bound(lo);
             it != file.merge_marks.end() && it->first <= hi; ++it) {
          fn.merges.insert(it->second.begin(), it->second.end());
          fn.merge_mark_lines.push_back(it->first);
        }

        fn.params = param_names(t, vmatch_paren_back(t, c.decl_close),
                                c.decl_close);
        fn.body_open = t.raw_index(i);

        out.push_back(std::move(fn));
        current_fn = static_cast<std::ptrdiff_t>(out.size()) - 1;
        fn_body = true;
      }
      stack.push_back(Scope{c.kind, std::move(c.scope_name), fn_body});
    } else if (t[i].text == "}") {
      if (!stack.empty()) {
        if (stack.back().fn_body && current_fn >= 0) {
          out[static_cast<std::size_t>(current_fn)].body_close = t.raw_index(i);
          current_fn = -1;
        }
        stack.pop_back();
      }
    } else if (current_fn >= 0) {
      scan_body_token(t, i, out[static_cast<std::size_t>(current_fn)]);
    }
  }
  return out;
}

}  // namespace simdlint
