#include "simdlint/effects.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "simdlint/callgraph.hpp"
#include "simdlint/symbols.hpp"

namespace simdlint {

namespace {

const std::set<std::string>& valid_effects() {
  static const std::set<std::string> kEffects = {
      "allocates", "locks",  "does-io", "nondet",
      "throws-untyped", "throws", "unbounded-recursion",
  };
  return kEffects;
}

// Call-shaped intrinsics, consulted only when no repo definition matches
// (repo code is analyzed, external code is table-driven).
const std::set<std::string>& alloc_member_calls() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "resize",  "reserve", "shrink_to_fit",
      "insert",    "emplace",      "emplace_front", "push_front", "assign",
      "append",    "str",          "substr",  "allocate",
  };
  return kNames;
}

const std::set<std::string>& alloc_free_calls() {
  static const std::set<std::string> kNames = {
      "malloc",      "calloc",      "realloc", "aligned_alloc",
      "strdup",      "make_unique", "make_shared", "to_string",
  };
  return kNames;
}

const std::set<std::string>& lock_member_calls() {
  static const std::set<std::string> kNames = {
      "lock",      "unlock",    "try_lock", "lock_shared", "unlock_shared",
      "fetch_add", "fetch_sub", "fetch_and", "fetch_or",   "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
      "notify_one", "notify_all", "wait", "exchange",
  };
  return kNames;
}

const std::set<std::string>& lock_free_calls() {
  static const std::set<std::string> kNames = {"atomic_thread_fence"};
  return kNames;
}

struct Edge {
  std::size_t to = 0;
  std::size_t line = 0;
  std::set<std::string> blocked;  // effects absolved by SIMDLINT-EFFECT-OK
  // `x.foo()` inside some other class's `foo`: the wrapper-delegation
  // pattern.  Name-based resolution links every same-named wrapper to every
  // other, which would fabricate recursion cycles, so delegation edges
  // carry effects but are invisible to the SCC pass.
  bool delegation = false;
};

struct Provenance {
  bool intrinsic = false;
  std::string detail;     // intrinsic: what to print in the witness terminal
  std::size_t callee = 0;  // call: the function the effect came from
};

struct Node {
  FunctionDef def;
  std::size_t file = 0;  // index into `files`
  std::vector<Edge> edges;
  std::set<std::string> effects;
  std::set<std::string> assumed;  // stripped from the exported summary
  std::map<std::string, Provenance> prov;
};

// An EFFECT-OK directive instance; `used` flips when it absolves something.
struct EffectOk {
  std::size_t file = 0;
  std::size_t line = 0;
  std::string effect;
  bool used = false;
};

Finding effect_finding(const std::string& rule, const std::string& path,
                       std::size_t line, std::string message,
                       std::string excerpt) {
  Finding f;
  f.rule = rule;
  f.path = path;
  f.line = line;
  f.message = std::move(message);
  f.excerpt = std::move(excerpt);
  return f;
}

std::string rule_for_effect(const std::string& effect) {
  if (effect == "allocates") return "region-allocates";
  if (effect == "locks") return "region-locks";
  if (effect == "does-io") return "region-io";
  if (effect == "nondet") return "region-nondet";
  if (effect == "throws-untyped") return "region-throws";
  if (effect == "unbounded-recursion") return "region-recursion";
  return "region-" + effect;
}

/// The call-path witness for `effect` starting at node `root`: short names
/// joined with " -> ", terminated by the intrinsic detail (or the cycle
/// closure, for recursion).
std::string witness(const std::vector<Node>& nodes, std::size_t root,
                    const std::string& effect) {
  std::ostringstream os;
  std::set<std::size_t> visited;
  std::size_t cur = root;
  for (int depth = 0; depth < 64; ++depth) {
    os << nodes[cur].def.short_name;
    visited.insert(cur);
    const auto it = nodes[cur].prov.find(effect);
    if (it == nodes[cur].prov.end()) break;
    if (it->second.intrinsic) {
      os << " -> " << it->second.detail;
      break;
    }
    const std::size_t next = it->second.callee;
    if (visited.count(next) > 0) {
      os << " -> " << nodes[next].def.short_name;
      break;
    }
    os << " -> ";
    cur = next;
  }
  os << " [" << effect << "]";
  return os.str();
}

// Tarjan strongly-connected components, iterative.  SCCs of size > 1 (or
// with a self-edge) seed the unbounded-recursion effect.
std::vector<std::vector<std::size_t>> sccs(const std::vector<Node>& nodes) {
  const std::size_t n = nodes.size();
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> out;
  int next_index = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.v;
      if (f.edge < nodes[v].edges.size()) {
        const Edge& edge = nodes[v].edges[f.edge++];
        if (edge.delegation) continue;
        const std::size_t w = edge.to;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<std::size_t> comp;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == v) break;
          }
          out.push_back(std::move(comp));
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return out;
}

}  // namespace

EffectConfig parse_effects_conf(std::string path, const std::string& text) {
  EffectConfig config;
  config.path = std::move(path);
  std::istringstream in(text);
  std::string raw_line;
  std::size_t line = 0;
  while (std::getline(in, raw_line)) {
    ++line;
    std::string entry = raw_line;
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry.resize(hash);
    std::istringstream fields(entry);
    std::vector<std::string> words;
    std::string w;
    while (fields >> w) words.push_back(w);
    if (words.empty()) continue;
    auto trimmed = [&raw_line] {
      std::string s = raw_line;
      while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.erase(s.begin());
      }
      while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                            s.back() == '\r')) {
        s.pop_back();
      }
      return s;
    };
    if (words[0] == "region" && words.size() == 3 &&
        (words[1] == "lockstep" || words[1] == "serial")) {
      config.regions.push_back(RegionDecl{words[1], words[2], line, trimmed()});
    } else if (words[0] == "assume" && words.size() == 3 &&
               valid_effects().count(words[1]) > 0) {
      config.assumes.push_back(AssumeDecl{words[1], words[2], line, trimmed()});
    } else if (words[0] == "source" && words.size() == 2) {
      config.sources.push_back(SourceDecl{words[1], line, trimmed()});
    } else if (words[0] == "sink" && words.size() == 3 &&
               words[1] == "member") {
      config.sinks.push_back(SinkDecl{words[2], true, line, trimmed()});
    } else if (words[0] == "sink" && words.size() == 2) {
      config.sinks.push_back(SinkDecl{words[1], false, line, trimmed()});
    } else if (words[0] == "merge" && words.size() == 3) {
      config.merges.push_back(MergeDecl{words[1], words[2], line, trimmed()});
    } else {
      config.errors.push_back(ConfError{
          "malformed directive (expected 'region <lockstep|serial> "
          "<suffix>', 'assume <effect> <suffix>', 'source <suffix>', "
          "'sink [member] <suffix>', or 'merge <kind> <suffix>')",
          line, trimmed()});
    }
  }
  return config;
}

std::vector<std::pair<std::string, std::string>> effect_rule_catalog() {
  return {
      {"region-allocates",
       "a lockstep-region root reaches a heap allocation (new, make_unique, "
       "vector growth)"},
      {"region-locks",
       "a lockstep-region root reaches a mutex, condition variable, or "
       "atomic read-modify-write"},
      {"region-io",
       "a lockstep-region root reaches host I/O (streams, FILE*, environment)"},
      {"region-nondet",
       "a region root reaches a nondeterminism source (rand, wall clock, "
       "pointer order)"},
      {"region-throws",
       "a lockstep-region root reaches an untyped throw (non-simdts::Error)"},
      {"region-recursion",
       "a lockstep-region root reaches a call-graph cycle (unbounded "
       "recursion has unbounded per-lane divergence)"},
      {"noexcept-throws",
       "a noexcept function in src/ can reach a throw — std::terminate "
       "instead of a typed error"},
      {"stale-region",
       "a region declaration (conf entry or inline SIMDLINT-REGION marker) "
       "matches no function definition"},
      {"stale-assume",
       "an effects.conf assume entry names a function that no longer has "
       "the assumed effect"},
      {"stale-effect-ok",
       "a SIMDLINT-EFFECT-OK directive absolved no intrinsic or call edge"},
      {"effects-conf-error", "effects.conf contains a malformed directive"},
  };
}

std::vector<Finding> find_effect_findings(const std::vector<SourceFile>& files,
                                          const EffectConfig& config,
                                          bool subset) {
  std::vector<Finding> out;

  for (const ConfError& e : config.errors) {
    out.push_back(
        effect_finding("effects-conf-error", config.path, e.line,
                       e.message, e.text));
  }

  // -------------------------------------------------------------------------
  // Extraction: every function of every parsed file, in (file, source) order.
  // -------------------------------------------------------------------------
  std::vector<Node> nodes;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (FunctionDef& fn : extract_functions(files[fi])) {
      Node node;
      node.def = std::move(fn);
      node.file = fi;
      nodes.push_back(std::move(node));
    }
  }

  // Inline REGION markers that attached to no function are stale (this is an
  // intra-file property, so it survives subset runs).
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    std::set<std::size_t> consumed;
    for (const Node& n : nodes) {
      if (n.file != fi) continue;
      consumed.insert(n.def.region_mark_lines.begin(),
                      n.def.region_mark_lines.end());
    }
    for (const auto& [line, kinds] : files[fi].region_marks) {
      if (consumed.count(line) > 0) continue;
      out.push_back(effect_finding(
          "stale-region", files[fi].path, line,
          "SIMDLINT-REGION marker attached to no function definition; move "
          "it onto the signature or remove it",
          files[fi].line_text(line)));
    }
  }

  // Shared call resolution (callgraph.hpp), one FnInfo per node.
  std::vector<FnInfo> fn_infos;
  fn_infos.reserve(nodes.size());
  for (const Node& n : nodes) {
    fn_infos.push_back(FnInfo{n.def.qualified, n.def.short_name,
                              n.def.is_static});
  }
  const CallResolver resolver(std::move(fn_infos));

  // EFFECT-OK directive instances, for absolution + staleness.
  std::vector<EffectOk> oks;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (const auto& [line, effects] : files[fi].effect_ok) {
      for (const std::string& e : effects) {
        oks.push_back(EffectOk{fi, line, e, false});
      }
    }
  }
  // A directive covers its own line and the next.
  auto absolve = [&oks](std::size_t file, std::size_t line,
                        const std::string& effect, bool mark_used) {
    bool hit = false;
    for (EffectOk& ok : oks) {
      if (ok.file != file || ok.effect != effect) continue;
      if (ok.line == line || ok.line + 1 == line) {
        hit = true;
        if (mark_used) ok.used = true;
      }
    }
    return hit;
  };

  // -------------------------------------------------------------------------
  // Call resolution: edges into the repo graph, or intrinsic-table seeds.
  // -------------------------------------------------------------------------
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& node = nodes[i];
    for (const CallSite& call : node.def.calls) {
      const std::vector<std::size_t> candidates = resolver.resolve(i, call);
      if (!candidates.empty()) {
        for (const std::size_t j : candidates) {
          Edge e;
          e.to = j;
          e.line = call.line;
          e.delegation = call.has_receiver && !call.receiver_this &&
                         node.def.short_name == call.last_name;
          for (const std::string& eff : valid_effects()) {
            if (absolve(node.file, call.line, eff, /*mark_used=*/false)) {
              e.blocked.insert(eff);
            }
          }
          node.edges.push_back(std::move(e));
        }
        continue;
      }
      // No repo definition: consult the intrinsic tables.
      std::string effect;
      std::string detail;
      if (call.has_receiver && alloc_member_calls().count(call.last_name) > 0) {
        effect = "allocates";
        detail = (call.receiver.empty() ? std::string()
                                        : call.receiver + ".") +
                 call.last_name;
      } else if (call.has_receiver &&
                 lock_member_calls().count(call.last_name) > 0) {
        effect = "locks";
        detail = (call.receiver.empty() ? std::string()
                                        : call.receiver + ".") +
                 call.last_name;
      } else if (!call.has_receiver &&
                 alloc_free_calls().count(call.last_name) > 0) {
        effect = "allocates";
        detail = call.written;
      } else if (!call.has_receiver &&
                 lock_free_calls().count(call.last_name) > 0) {
        effect = "locks";
        detail = call.written;
      }
      if (!effect.empty()) {
        node.def.intrinsics.push_back({effect, detail, call.line});
      }
    }
  }

  // Seed effects from intrinsics, minus EFFECT-OK absolutions.
  for (Node& node : nodes) {
    for (const IntrinsicUse& use : node.def.intrinsics) {
      if (absolve(node.file, use.line, use.effect, /*mark_used=*/true)) {
        continue;
      }
      if (node.effects.insert(use.effect).second) {
        Provenance p;
        p.intrinsic = true;
        p.detail = use.detail;
        node.prov[use.effect] = std::move(p);
      }
    }
  }

  // Recursion seeds: call-graph SCCs.
  for (const std::vector<std::size_t>& comp : sccs(nodes)) {
    bool cyclic = comp.size() > 1;
    if (!cyclic) {
      for (const Edge& e : nodes[comp[0]].edges) {
        if (e.to == comp[0] && !e.delegation) cyclic = true;
      }
    }
    if (!cyclic) continue;
    const std::set<std::size_t> members(comp.begin(), comp.end());
    for (const std::size_t m : comp) {
      if (!nodes[m].effects.insert("unbounded-recursion").second) continue;
      const Edge* best = nullptr;
      for (const Edge& e : nodes[m].edges) {
        if (e.delegation || members.count(e.to) == 0) continue;
        if (best == nullptr || e.line < best->line) best = &e;
      }
      Provenance p;
      if (best != nullptr) {
        p.callee = best->to;
      } else {
        p.intrinsic = true;
        p.detail = "(self)";
      }
      nodes[m].prov["unbounded-recursion"] = std::move(p);
    }
  }

  // Assume entries strip effects from exported summaries.
  std::vector<std::vector<std::size_t>> assume_matches(config.assumes.size());
  for (std::size_t a = 0; a < config.assumes.size(); ++a) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (suffix_match(nodes[i].def.qualified, config.assumes[a].pattern)) {
        nodes[i].assumed.insert(config.assumes[a].effect);
        assume_matches[a].push_back(i);
      }
    }
  }

  // -------------------------------------------------------------------------
  // Bottom-up propagation to a fixpoint.  Deterministic sweep order makes
  // provenance (and therefore witnesses) byte-stable.
  // -------------------------------------------------------------------------
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (const Edge& e : nodes[i].edges) {
        const Node& callee = nodes[e.to];
        for (const std::string& eff : callee.effects) {
          if (callee.assumed.count(eff) > 0) continue;
          if (e.blocked.count(eff) > 0) continue;
          if ((eff == "throws" || eff == "throws-untyped") &&
              nodes[i].def.has_try) {
            continue;  // a try block in the caller contains callee throws
          }
          if (nodes[i].effects.insert(eff).second) {
            Provenance p;
            p.callee = e.to;
            nodes[i].prov[eff] = std::move(p);
            changed = true;
          }
        }
      }
    }
  }

  // Blocked-edge EFFECT-OK directives count as used when the callee really
  // exports the blocked effect (otherwise they absolved nothing).
  for (const Node& node : nodes) {
    for (const Edge& e : node.edges) {
      for (const std::string& eff : e.blocked) {
        const Node& callee = nodes[e.to];
        if (callee.effects.count(eff) > 0 && callee.assumed.count(eff) == 0) {
          absolve(node.file, e.line, eff, /*mark_used=*/true);
        }
      }
    }
  }

  // Stale assume entries: matched nothing, or nothing that has the effect.
  if (!subset) {
    for (std::size_t a = 0; a < config.assumes.size(); ++a) {
      const AssumeDecl& decl = config.assumes[a];
      bool live = false;
      for (const std::size_t i : assume_matches[a]) {
        if (nodes[i].effects.count(decl.effect) > 0) live = true;
      }
      if (!live) {
        out.push_back(effect_finding(
            "stale-assume", config.path, decl.line,
            assume_matches[a].empty()
                ? "assume entry matches no function definition; remove it"
                : "assumed effect '" + decl.effect +
                      "' is no longer present in '" + decl.pattern +
                      "'; remove the entry",
            decl.text));
      }
    }
  }

  for (const EffectOk& ok : oks) {
    if (ok.used) continue;
    out.push_back(effect_finding(
        "stale-effect-ok", files[ok.file].path, ok.line,
        "SIMDLINT-EFFECT-OK(" + ok.effect +
            ") absolved no intrinsic or call edge; remove it",
        files[ok.file].line_text(ok.line)));
  }

  // -------------------------------------------------------------------------
  // Region roots and their forbidden-effect rules.
  // -------------------------------------------------------------------------
  static const std::set<std::string> kLockstepForbidden = {
      "allocates", "locks", "does-io", "nondet", "throws-untyped",
      "unbounded-recursion"};
  static const std::set<std::string> kSerialForbidden = {"nondet"};

  // kind -> root node indices, from inline markers and conf entries.
  std::vector<std::pair<std::string, std::size_t>> roots;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const std::string& kind : nodes[i].def.regions) {
      if (kind == "lockstep" || kind == "serial") {
        roots.emplace_back(kind, i);
      } else {
        out.push_back(effect_finding(
            "stale-region", files[nodes[i].file].path, nodes[i].def.line,
            "unknown region kind '" + kind +
                "' (expected lockstep or serial)",
            files[nodes[i].file].line_text(nodes[i].def.line)));
      }
    }
  }
  for (const RegionDecl& decl : config.regions) {
    bool matched = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (suffix_match(nodes[i].def.qualified, decl.pattern)) {
        roots.emplace_back(decl.kind, i);
        matched = true;
      }
    }
    if (!matched && !subset) {
      out.push_back(effect_finding(
          "stale-region", config.path, decl.line,
          "region entry matches no function definition; remove it or fix "
          "the suffix",
          decl.text));
    }
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

  for (const auto& [kind, i] : roots) {
    const Node& root = nodes[i];
    const std::set<std::string>& forbidden =
        kind == "lockstep" ? kLockstepForbidden : kSerialForbidden;
    for (const std::string& eff : forbidden) {
      if (root.effects.count(eff) == 0) continue;
      if (root.assumed.count(eff) > 0) continue;
      out.push_back(effect_finding(
          rule_for_effect(eff), files[root.file].path, root.def.line,
          kind + " region '" + root.def.qualified + "' reaches " + eff +
              ": " + witness(nodes, i, eff),
          files[root.file].line_text(root.def.line)));
    }
  }

  // noexcept contract: a noexcept function in src/ reaching any throw is a
  // std::terminate, not a typed error.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    if (!node.def.is_noexcept) continue;
    if (!path_in_dir(node.def.path, "src")) continue;
    if (node.effects.count("throws") == 0) continue;
    if (node.assumed.count("throws") > 0) continue;
    out.push_back(effect_finding(
        "noexcept-throws", files[node.file].path, node.def.line,
        "noexcept function '" + node.def.qualified +
            "' can reach a throw: " + witness(nodes, i, "throws"),
        files[node.file].line_text(node.def.line)));
  }

  return out;
}

}  // namespace simdlint
