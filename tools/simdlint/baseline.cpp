#include "simdlint/baseline.hpp"

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "simdlint/report.hpp"

namespace simdlint {

namespace {

// FNV-1a over the normalized excerpt: stable across line-number drift.
std::string hash_hex(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace

std::string fingerprint(const Finding& f, std::size_t occurrence) {
  std::ostringstream os;
  os << f.rule << '|' << f.path << '|' << hash_hex(f.excerpt) << '|'
     << occurrence;
  return os.str();
}

std::vector<std::string> fingerprints(const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> seen;  // rule|path|hash -> count
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    const std::string key = f.rule + '|' + f.path + '|' + hash_hex(f.excerpt);
    out.push_back(fingerprint(f, seen[key]++));
  }
  return out;
}

std::set<std::string> load_baseline(std::istream& in) {
  // Tolerant scan for "fingerprint": "..." pairs; the file is machine
  // written, so full JSON parsing buys nothing.
  std::set<std::string> out;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  static const std::string kKey = "\"fingerprint\"";
  std::size_t pos = 0;
  while ((pos = text.find(kKey, pos)) != std::string::npos) {
    pos += kKey.size();
    const std::size_t open = text.find('"', text.find(':', pos));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    out.insert(text.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return out;
}

void write_baseline(std::ostream& out, const std::vector<Finding>& findings) {
  const std::vector<std::string> fps = fingerprints(findings);
  out << "{\n  \"version\": 1,\n  \"findings\": [";
  bool first = true;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (findings[i].suppressed) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    {\"fingerprint\": \"" << json_escape(fps[i])
        << "\", \"rule\": \"" << json_escape(findings[i].rule)
        << "\", \"path\": \"" << json_escape(findings[i].path)
        << "\", \"line\": " << findings[i].line << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace simdlint
