// simdlint: shared call-resolution layer.
//
// Both cross-TU analyses — the v3 effect reachability pass (effects.hpp) and
// the v4 determinism-taint pass (taint.hpp) — need the same answer to the
// same question: "which repo function definitions can this call site reach?"
// Keeping one resolver means the two passes can never drift apart on
// receiver handling, static filtering, or the ubiquitous-member-name rules,
// and a resolution fix lands in both at once.
//
// Resolution policy (token-level, optimistic about external code):
//   * qualified calls (`a::b::foo(...)`) match repo definitions whose
//     qualified name ends with the written name at a `::` component
//     boundary;
//   * bare and member calls match by last name;
//   * a receiver call (`p.foo(...)`) targets an instance member, so static
//     definitions never match, and a receiver other than `this` is a call
//     on *some other object* — never the caller recursing;
//   * member-call names ubiquitous across std:: containers (`size`, `clear`,
//     `reset`, ...) never resolve through an explicit non-this receiver, and
//     bare/this-> uses resolve only within the caller's own class;
//   * `std::`-qualified (and `__`-prefixed) calls never resolve to repo
//     code.
// An empty candidate list means "external": the caller falls back to its
// intrinsic tables or trusts the callee.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "simdlint/symbols.hpp"

namespace simdlint {

/// True when `qualified` ends with `pattern` at a component boundary.
bool suffix_match(const std::string& qualified, const std::string& pattern);

/// Method names so ubiquitous across std:: containers, atomics, and smart
/// pointers that a member call through them must never resolve to repo
/// definitions: `counts_.size()` is the vector's size, not every repo
/// function named `size`.
const std::set<std::string>& ubiquitous_member_calls();

/// The per-definition facts call resolution consumes.  Analyses build one
/// entry per extracted FunctionDef, in the same index order as their own
/// node arrays.
struct FnInfo {
  std::string qualified;   // "simdts::lb::Engine::expand_cycle"
  std::string short_name;  // "expand_cycle"
  bool is_static = false;
};

/// Resolves call sites against a fixed set of repo function definitions.
class CallResolver {
 public:
  explicit CallResolver(std::vector<FnInfo> fns);

  /// Candidate definition indices for `call`, made from definition
  /// `caller`.  Empty means the call is external.
  [[nodiscard]] std::vector<std::size_t> resolve(std::size_t caller,
                                                 const CallSite& call) const;

 private:
  std::vector<FnInfo> fns_;
  std::map<std::string, std::vector<std::size_t>> by_last_name_;
};

}  // namespace simdlint
