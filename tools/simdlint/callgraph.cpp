#include "simdlint/callgraph.hpp"

#include <algorithm>
#include <utility>

namespace simdlint {

bool suffix_match(const std::string& qualified, const std::string& pattern) {
  if (pattern.empty() || qualified.size() < pattern.size()) return false;
  if (qualified.compare(qualified.size() - pattern.size(), pattern.size(),
                        pattern) != 0) {
    return false;
  }
  if (qualified.size() == pattern.size()) return true;
  const std::size_t at = qualified.size() - pattern.size();
  return at >= 2 && qualified.compare(at - 2, 2, "::") == 0;
}

const std::set<std::string>& ubiquitous_member_calls() {
  static const std::set<std::string> kNames = {
      "size",   "empty",    "begin",     "end",      "cbegin",   "cend",
      "rbegin", "rend",     "data",      "at",       "front",    "back",
      "clear",  "count",    "find",      "contains", "load",     "store",
      "get",    "reset",    "release",   "swap",     "top",      "pop",
      "pop_back", "pop_front", "c_str",  "str",      "length",   "value",
      "has_value", "substr", "compare",  "erase",    "first",    "second",
      "fill",   "min",      "max",       "test",
  };
  return kNames;
}

CallResolver::CallResolver(std::vector<FnInfo> fns) : fns_(std::move(fns)) {
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    by_last_name_[fns_[i].short_name].push_back(i);
  }
}

std::vector<std::size_t> CallResolver::resolve(std::size_t caller,
                                               const CallSite& call) const {
  std::vector<std::size_t> candidates;
  if (call.std_qualified) return candidates;

  if (call.written.find("::") != std::string::npos) {
    for (std::size_t j = 0; j < fns_.size(); ++j) {
      if (suffix_match(fns_[j].qualified, call.written)) {
        candidates.push_back(j);
      }
    }
  } else {
    const auto it = by_last_name_.find(call.last_name);
    if (it != by_last_name_.end()) candidates = it->second;
  }
  // A receiver call (`p.foo(...)`) targets an instance member: static
  // functions only dispatch by qualified name, so they never match.
  if (call.has_receiver) {
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](std::size_t j) { return fns_[j].is_static; }),
        candidates.end());
  }
  // A member call with an explicit receiver other than `this` is a call on
  // *some other object* — never the caller recursing.
  if (call.has_receiver && !call.receiver_this) {
    candidates.erase(std::remove(candidates.begin(), candidates.end(), caller),
                     candidates.end());
  }
  if (call.written.find("::") == std::string::npos &&
      ubiquitous_member_calls().count(call.last_name) > 0) {
    if (call.has_receiver && !call.receiver_this) {
      // `v.size()` names the container's API, not repo code.
      candidates.clear();
    } else {
      // Bare or this-> calls stay honest for real recursion, but only
      // within the caller's own class; a free function's bare `size()` is
      // std/ADL, not a method of some unrelated class.
      const std::string& q = fns_[caller].qualified;
      const std::size_t cut = q.rfind("::");
      if (cut == std::string::npos) {
        candidates.clear();
      } else {
        const std::string prefix = q.substr(0, cut + 2);
        candidates.erase(
            std::remove_if(candidates.begin(), candidates.end(),
                           [&](std::size_t j) {
                             return fns_[j].qualified.compare(
                                        0, prefix.size(), prefix) != 0;
                           }),
            candidates.end());
      }
    }
  }
  return candidates;
}

}  // namespace simdlint
