#include "simdlint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <set>

#include "simdlint/include_graph.hpp"

namespace simdlint {

namespace {

using Tokens = std::vector<Token>;

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

bool tok_is(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// Backward scan from the ')' at `close` to its matching '('; -1 if none.
std::ptrdiff_t match_paren_back(const Tokens& t, std::ptrdiff_t close) {
  int depth = 0;
  for (std::ptrdiff_t k = close; k >= 0; --k) {
    if (t[static_cast<std::size_t>(k)].text == ")") {
      ++depth;
    } else if (t[static_cast<std::size_t>(k)].text == "(") {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

/// Forward scan from the opener at `open` to its matching closer; returns
/// t.size() if unbalanced.
std::size_t match_forward(const Tokens& t, std::size_t open, const char* o,
                          const char* c) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (t[k].text == o) {
      ++depth;
    } else if (t[k].text == c) {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

/// True when the identifier at `i` is used as a free or std::-qualified call:
/// `foo(...)`, `std::foo(...)` — but not `obj.foo(...)`, `ns::foo(...)`, or a
/// declaration like `MachineClock clock(...)`.
bool banned_call_at(const Tokens& t, std::size_t i) {
  if (i + 1 >= t.size() || t[i + 1].text != "(") return false;
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.text == "::") {
    return i >= 2 && t[i - 2].text == "std";
  }
  if (p.text == "." || p.text == "->") return false;
  if (p.ident || p.text == "*" || p.text == "&" || p.text == ">") return false;
  return true;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

Finding make_finding(const Rule& rule, const SourceFile& f, std::size_t line,
                     std::string message) {
  Finding out;
  out.rule = rule.id();
  out.path = f.path;
  out.line = line;
  out.message = std::move(message);
  out.excerpt = f.line_text(line);
  return out;
}

// ---------------------------------------------------------------------------
// Scope analysis
//
// A single forward walk over the token stream classifying every '{' by what
// opened it.  This drives three questions rules ask: "is this token inside a
// function body?", "is it inside a for/while loop?", and "is it at
// file/namespace scope?".  The classification is a heuristic over tokens,
// not a parse — good enough for linting, and every rule has the
// SIMDLINT-ALLOW escape hatch for the residue.
// ---------------------------------------------------------------------------

struct Region {
  std::size_t begin = 0;  // token indices, inclusive
  std::size_t end = 0;
};

struct ScopeInfo {
  std::vector<Region> functions;  // outermost function bodies
  std::vector<Region> func_sigs;  // signature tokens for functions[i]
  std::vector<Region> loops;      // for/while bodies, braced or not
  std::vector<bool> ns_scope;     // per token: at file/namespace/type scope
};

bool in_any_region(const std::vector<Region>& rs, std::size_t idx) {
  return std::any_of(rs.begin(), rs.end(), [idx](const Region& r) {
    return idx >= r.begin && idx <= r.end;
  });
}

enum class ScopeKind { kNamespace, kType, kFunction, kLoop, kBlock, kOther };

ScopeKind classify_open_brace(const Tokens& t, std::size_t i) {
  if (i == 0) return ScopeKind::kOther;
  const std::string& prev = t[i - 1].text;
  if (prev == "do" || prev == "else" || prev == "try") return ScopeKind::kBlock;

  // `namespace a::b {` / anonymous `namespace {`.
  {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    while (k >= 0 && (t[static_cast<std::size_t>(k)].ident ||
                      t[static_cast<std::size_t>(k)].text == "::")) {
      if (t[static_cast<std::size_t>(k)].text == "namespace") {
        return ScopeKind::kNamespace;
      }
      --k;
    }
  }

  // Function-ish: `...) {`, possibly with trailing decorations or a trailing
  // return type between the ')' and the '{'.
  std::ptrdiff_t close = -1;
  if (prev == ")") {
    close = static_cast<std::ptrdiff_t>(i) - 1;
  } else {
    static const std::set<std::string> kDecoration = {
        "const", "noexcept", "override", "final",    "mutable",
        "&",     "*",        "::",       "->",       ",",
        "<",     ">",        "throw",    "requires",
    };
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    int budget = 50;
    while (k >= 0 && budget-- > 0) {
      const Token& tk = t[static_cast<std::size_t>(k)];
      if (tk.text == ")") {
        close = k;
        break;
      }
      if (!(tk.ident || kDecoration.count(tk.text) > 0 ||
            std::isdigit(static_cast<unsigned char>(tk.text[0])) != 0)) {
        break;
      }
      --k;
    }
  }
  if (close >= 0) {
    const std::ptrdiff_t open = match_paren_back(t, close);
    if (open > 0) {
      const std::string& kw = t[static_cast<std::size_t>(open) - 1].text;
      if (kw == "for" || kw == "while") return ScopeKind::kLoop;
      if (kw == "if" || kw == "switch" || kw == "catch") {
        return ScopeKind::kBlock;
      }
      return ScopeKind::kFunction;  // incl. lambdas: '](...)' and ctors
    }
    if (open == 0) return ScopeKind::kFunction;
  }

  // `struct X : A, B {`, `enum class E : std::uint8_t {`.
  {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    int budget = 100;
    while (k >= 0 && budget-- > 0) {
      const std::string& s = t[static_cast<std::size_t>(k)].text;
      if (s == ";" || s == "{" || s == "}" || s == ")" || s == "=") break;
      if (s == "struct" || s == "class" || s == "union" || s == "enum") {
        return ScopeKind::kType;
      }
      --k;
    }
  }
  return ScopeKind::kOther;
}

ScopeInfo analyze_scopes(const Tokens& t) {
  ScopeInfo info;
  info.ns_scope.assign(t.size(), true);
  std::vector<ScopeKind> stack;
  std::size_t func_depth_mark = 0;  // stack size when outermost fn was pushed
  bool in_function = false;
  std::size_t func_begin = 0;
  Region func_sig;

  auto inside_code = [&stack] {
    return std::any_of(stack.begin(), stack.end(), [](ScopeKind k) {
      return k == ScopeKind::kFunction || k == ScopeKind::kLoop ||
             k == ScopeKind::kBlock;
    });
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    info.ns_scope[i] = !inside_code();
    if (t[i].text == "{") {
      const ScopeKind kind = classify_open_brace(t, i);
      if (kind == ScopeKind::kLoop) {
        const std::size_t end = match_forward(t, i, "{", "}");
        info.loops.push_back({i, end == t.size() ? t.size() - 1 : end});
      }
      if (kind == ScopeKind::kFunction && !in_function) {
        in_function = true;
        func_depth_mark = stack.size();
        func_begin = i;
        // Signature: back to the previous top-level terminator.
        std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
        int budget = 200;
        while (k > 0 && budget-- > 0) {
          const std::string& s = t[static_cast<std::size_t>(k)].text;
          if (s == ";" || s == "}" || s == "{") break;
          --k;
        }
        func_sig = {static_cast<std::size_t>(k), i == 0 ? 0 : i - 1};
      }
      stack.push_back(kind);
    } else if (t[i].text == "}") {
      if (!stack.empty()) stack.pop_back();
      if (in_function && stack.size() == func_depth_mark) {
        in_function = false;
        info.functions.push_back({func_begin, i});
        info.func_sigs.push_back(func_sig);
      }
    }
  }

  // Braceless for/while bodies: `for (...) stmt;`.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || (t[i].text != "for" && t[i].text != "while")) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    const std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close >= t.size() || close + 1 >= t.size()) continue;
    if (t[close + 1].text == "{" || t[close + 1].text == ";") continue;
    int depth = 0;
    for (std::size_t k = close + 1; k < t.size(); ++k) {
      if (t[k].text == "(") ++depth;
      if (t[k].text == ")") --depth;
      if (t[k].text == ";" && depth <= 0) {
        info.loops.push_back({close + 1, k});
        break;
      }
    }
  }
  return info;
}

// ---------------------------------------------------------------------------
// D1: no-rand
// ---------------------------------------------------------------------------

class NoRandRule final : public Rule {
 public:
  std::string id() const override { return "no-rand"; }
  std::string summary() const override {
    return "unseeded or global RNG (rand, random_device, ...) — every random "
           "choice must flow from an explicit seed";
  }
  bool applies(const std::string& path) const override {
    // Carve-out for a dedicated seeded-RNG factory, should one ever exist.
    return !path_in_dir(path, "src/common/rng");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    static const std::set<std::string> kBanned = {
        "rand",    "srand",   "rand_r",         "drand48",
        "lrand48", "mrand48", "erand48",        "random_shuffle",
        "random_device",
    };
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
      const Token& t = f.tokens[i];
      if (!t.ident || t.preproc || kBanned.count(t.text) == 0) continue;
      if (i > 0 &&
          (f.tokens[i - 1].text == "." || f.tokens[i - 1].text == "->")) {
        continue;  // member named e.g. `rand` on some other object
      }
      out.push_back(make_finding(
          *this, f, t.line,
          "'" + t.text +
              "' is a nondeterminism source; use a seeded engine "
              "(std::mt19937 with an explicit seed, or fault::splitmix64)"));
    }
  }
};

// ---------------------------------------------------------------------------
// D1/D3: no-wall-clock
// ---------------------------------------------------------------------------

class NoWallClockRule final : public Rule {
 public:
  std::string id() const override { return "no-wall-clock"; }
  std::string summary() const override {
    return "wall-clock reads in library code — simulated time flows through "
           "MachineClock; host timing belongs in bench/ or src/runtime/";
  }
  bool applies(const std::string& path) const override {
    return path_in_dir(path, "src") && !path_in_dir(path, "src/runtime");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    static const std::set<std::string> kBannedIdent = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",
    };
    static const std::set<std::string> kBannedCall = {"time", "clock"};
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
      const Token& t = f.tokens[i];
      if (!t.ident || t.preproc) continue;
      if (kBannedIdent.count(t.text) > 0) {
        out.push_back(make_finding(
            *this, f, t.line,
            "'" + t.text +
                "' reads the host clock; metrics must be functions of "
                "simulated cycles (MachineClock)"));
      } else if (kBannedCall.count(t.text) > 0 && banned_call_at(f.tokens, i)) {
        out.push_back(make_finding(
            *this, f, t.line,
            "'" + t.text +
                "()' reads the host clock; route time through MachineClock"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// D1: no-unordered-io-iter
// ---------------------------------------------------------------------------

class UnorderedIoIterRule final : public Rule {
 public:
  std::string id() const override { return "no-unordered-io-iter"; }
  std::string summary() const override {
    return "iterating an unordered container in a function that emits "
           "CSV/journal/metrics output — hash order leaks into bytes";
  }
  bool applies(const std::string& path) const override {
    return path_in_dir(path, "src") || path_in_dir(path, "bench") ||
           path_in_dir(path, "tools");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const Tokens& t = f.tokens;
    const std::set<std::string> vars = unordered_vars(t);
    if (vars.empty()) return;
    const ScopeInfo scopes = analyze_scopes(t);
    for (std::size_t fi = 0; fi < scopes.functions.size(); ++fi) {
      const Region body = scopes.functions[fi];
      const Region sig = scopes.func_sigs[fi];
      if (!writes_output(t, sig, body)) continue;
      flag_iteration(f, t, body, vars, out);
    }
  }

 private:
  static std::set<std::string> unordered_vars(const Tokens& t) {
    static const std::set<std::string> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident || kTypes.count(t[i].text) == 0) continue;
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") ++depth;
          if (t[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
          if (t[j].text == ";" || t[j].text == "{") break;  // lost track
        }
      }
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && t[j].ident) {
        // `name` followed by '(' is a function declarator, not a variable.
        if (j + 1 < t.size() && t[j + 1].text == "(") continue;
        vars.insert(t[j].text);
      }
    }
    return vars;
  }

  static bool writes_output(const Tokens& t, const Region& sig,
                            const Region& body) {
    static const std::set<std::string> kSinks = {"ofstream", "fprintf", "fputs",
                                                 "fwrite", "cout"};
    for (std::size_t i = sig.begin; i <= sig.end && i < t.size(); ++i) {
      if (t[i].ident && (t[i].text == "ostream" || t[i].text == "ofstream")) {
        return true;
      }
    }
    for (std::size_t i = body.begin; i <= body.end && i < t.size(); ++i) {
      if (!t[i].ident) continue;
      if (kSinks.count(t[i].text) > 0) return true;
      const std::string lo = lower(t[i].text);
      if (lo.find("csv") != std::string::npos ||
          lo.find("journal") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  void flag_iteration(const SourceFile& f, const Tokens& t, const Region& body,
                      const std::set<std::string>& vars,
                      std::vector<Finding>& out) const {
    for (std::size_t i = body.begin; i <= body.end && i < t.size(); ++i) {
      // Range-for over an unordered variable.
      if (t[i].text == "for" && tok_is(t, i + 1, "(")) {
        const std::size_t close = match_forward(t, i + 1, "(", ")");
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].text != ":") continue;
          for (std::size_t v = k + 1; v < close; ++v) {
            if (t[v].ident && vars.count(t[v].text) > 0) {
              out.push_back(make_finding(
                  *this, f, t[v].line,
                  "range-for over unordered container '" + t[v].text +
                      "' in an output-writing function; hash order is not "
                      "deterministic — use std::map or sort before emitting"));
            }
          }
          break;
        }
      }
      // Explicit begin()/end() on an unordered variable.
      if (t[i].ident && vars.count(t[i].text) > 0 && i + 3 < t.size() &&
          (t[i + 1].text == "." || t[i + 1].text == "->") &&
          (t[i + 2].text == "begin" || t[i + 2].text == "end" ||
           t[i + 2].text == "cbegin" || t[i + 2].text == "cend") &&
          t[i + 3].text == "(") {
        out.push_back(make_finding(
            *this, f, t[i].line,
            "iterator over unordered container '" + t[i].text +
                "' in an output-writing function; hash order is not "
                "deterministic — use std::map or sort before emitting"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// D1: no-pointer-order
// ---------------------------------------------------------------------------

class PointerOrderRule final : public Rule {
 public:
  std::string id() const override { return "no-pointer-order"; }
  std::string summary() const override {
    return "ordering or hashing raw pointers — addresses vary run to run, so "
           "any order derived from them is nondeterministic";
  }
  bool applies(const std::string& path) const override {
    return path_in_dir(path, "src") || path_in_dir(path, "bench");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident || t[i].preproc) continue;
      if (t[i].text == "hash" && tok_is(t, i + 1, "<")) {
        const bool std_qualified =
            i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
        const bool bare = i == 0 || (!t[i - 1].ident && t[i - 1].text != "::" &&
                                     t[i - 1].text != "." &&
                                     t[i - 1].text != "->");
        if (!std_qualified && !bare) continue;
        const std::size_t close = match_forward(t, i + 1, "<", ">");
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].text == "*") {
            out.push_back(make_finding(
                *this, f, t[i].line,
                "std::hash over a pointer type; pointer values differ across "
                "runs — hash a stable id instead"));
            break;
          }
        }
      }
      if ((t[i].text == "sort" || t[i].text == "stable_sort") &&
          tok_is(t, i + 1, "(")) {
        check_sort_comparator(f, t, i, out);
      }
    }
  }

 private:
  void check_sort_comparator(const SourceFile& f, const Tokens& t,
                             std::size_t sort_idx,
                             std::vector<Finding>& out) const {
    const std::size_t close = match_forward(t, sort_idx + 1, "(", ")");
    // Find a lambda among the arguments.
    for (std::size_t i = sort_idx + 2; i < close; ++i) {
      if (t[i].text != "[") continue;
      const std::size_t cap_end = match_forward(t, i, "[", "]");
      if (cap_end >= close || !tok_is(t, cap_end + 1, "(")) continue;
      const std::size_t params_end = match_forward(t, cap_end + 1, "(", ")");
      // Parameter names declared with a '*' in their declarator.
      std::set<std::string> ptr_params;
      bool saw_star = false;
      std::string last_ident;
      for (std::size_t k = cap_end + 2; k < params_end; ++k) {
        if (t[k].text == ",") {
          if (saw_star && !last_ident.empty()) ptr_params.insert(last_ident);
          saw_star = false;
          last_ident.clear();
        } else if (t[k].text == "*") {
          saw_star = true;
        } else if (t[k].ident && t[k].text != "const") {
          last_ident = t[k].text;
        }
      }
      if (saw_star && !last_ident.empty()) ptr_params.insert(last_ident);
      if (ptr_params.empty()) continue;
      // Body: direct `a < b` / `a > b` comparison of the raw pointers.
      if (params_end + 1 >= t.size() || t[params_end + 1].text != "{") continue;
      const std::size_t body_end = match_forward(t, params_end + 1, "{", "}");
      for (std::size_t k = params_end + 2; k + 2 <= body_end; ++k) {
        if (t[k].ident && ptr_params.count(t[k].text) > 0 &&
            (t[k + 1].text == "<" || t[k + 1].text == ">") && t[k + 2].ident &&
            ptr_params.count(t[k + 2].text) > 0) {
          out.push_back(make_finding(
              *this, f, t[k].line,
              "sorting by raw pointer value; addresses vary run to run — "
              "compare a stable field or index instead"));
        }
      }
      return;
    }
  }
};

// ---------------------------------------------------------------------------
// D2: typed-errors
// ---------------------------------------------------------------------------

class TypedErrorsRule final : public Rule {
 public:
  std::string id() const override { return "typed-errors"; }
  std::string summary() const override {
    return "assert/abort/exit or bare std exceptions in library code — throw "
           "the simdts::Error hierarchy (common/error.hpp) with context";
  }
  bool applies(const std::string& path) const override {
    return path_in_dir(path, "src") && path != "src/common/error.hpp";
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    static const std::set<std::string> kAbortCalls = {
        "abort", "exit", "_Exit", "quick_exit", "terminate"};
    static const std::set<std::string> kBareExceptions = {
        "runtime_error", "logic_error",    "invalid_argument",
        "domain_error",  "length_error",   "out_of_range",
        "range_error",   "overflow_error", "underflow_error"};
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident || t[i].preproc) continue;
      if (t[i].text == "assert" && tok_is(t, i + 1, "(")) {
        out.push_back(make_finding(
            *this, f, t[i].line,
            "assert() kills the whole sweep with no context; throw a typed "
            "simdts::Error (common/error.hpp) instead"));
      } else if (kAbortCalls.count(t[i].text) > 0 &&
                 banned_call_at(t, i)) {
        out.push_back(make_finding(
            *this, f, t[i].line,
            "'" + t[i].text +
                "()' terminates the host process; library code reports "
                "failures via the simdts::Error hierarchy"));
      } else if (t[i].text == "throw") {
        for (std::size_t k = i + 1; k < t.size() && k < i + 40; ++k) {
          if (t[k].text == ";") break;
          if (t[k].ident && kBareExceptions.count(t[k].text) > 0) {
            out.push_back(make_finding(
                *this, f, t[i].line,
                "bare std::" + t[k].text +
                    "; throw a typed simdts::Error subclass so callers can "
                    "tell failure classes apart"));
            break;
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// D3: lockstep-io
// ---------------------------------------------------------------------------

class LockstepIoRule final : public Rule {
 public:
  std::string id() const override { return "lockstep-io"; }
  std::string summary() const override {
    return "host I/O in lockstep substrate code (src/{lb,simd,fault,search}) "
           "— the engine reports through RunStats, never the host";
  }
  bool applies(const std::string& path) const override {
    return path_in_dir(path, "src/lb") || path_in_dir(path, "src/simd") ||
           path_in_dir(path, "src/fault") || path_in_dir(path, "src/search");
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    static const std::set<std::string> kIo = {
        "cout",    "cerr",   "clog",   "printf", "fprintf", "fputs",
        "fwrite",  "fopen",  "freopen", "fscanf", "scanf",  "ofstream",
        "ifstream", "fstream", "getenv", "putenv", "setenv", "system",
    };
    const Tokens& t = f.tokens;
    const ScopeInfo scopes = analyze_scopes(t);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident || t[i].preproc || kIo.count(t[i].text) == 0) continue;
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      const bool in_loop = in_any_region(scopes.loops, i);
      out.push_back(make_finding(
          *this, f, t[i].line,
          in_loop
              ? "'" + t[i].text +
                    "' — host I/O inside a per-lane loop serializes lanes "
                    "and breaks lockstep timing; lift it out of the engine"
              : "'" + t[i].text +
                    "' — host I/O in lockstep substrate code; results leave "
                    "the engine via RunStats/metrics, not the host"));
    }
  }
};

// ---------------------------------------------------------------------------
// D4: header-pragma-once
// ---------------------------------------------------------------------------

class HeaderPragmaOnceRule final : public Rule {
 public:
  std::string id() const override { return "header-pragma-once"; }
  std::string summary() const override {
    return "headers open with #pragma once (repo convention; the "
           "self-containment check compiles each header twice)";
  }
  bool applies(const std::string& path) const override {
    const auto dot = path.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string ext = path.substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const Tokens& t = f.tokens;
    if (t.size() >= 3 && t[0].text == "#" && t[1].text == "pragma" &&
        t[2].text == "once") {
      return;
    }
    const std::size_t line = t.empty() ? 1 : t[0].line;
    out.push_back(make_finding(
        *this, f, line,
        "header does not open with '#pragma once' (first code line must be "
        "the include guard)"));
  }
};

// ---------------------------------------------------------------------------
// D4: header-using-namespace
// ---------------------------------------------------------------------------

class HeaderUsingNamespaceRule final : public Rule {
 public:
  std::string id() const override { return "header-using-namespace"; }
  std::string summary() const override {
    return "'using namespace' at namespace scope in a header leaks names "
           "into every includer";
  }
  bool applies(const std::string& path) const override {
    const auto dot = path.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string ext = path.substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
  }
  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const Tokens& t = f.tokens;
    const ScopeInfo scopes = analyze_scopes(t);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "using" && t[i + 1].text == "namespace" &&
          scopes.ns_scope[i]) {
        out.push_back(make_finding(
            *this, f, t[i].line,
            "'using namespace' at namespace scope in a header; qualify names "
            "or scope the directive inside a function"));
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry and per-file driver
// ---------------------------------------------------------------------------

bool path_in_dir(const std::string& path, const std::string& dir) {
  if (path.size() < dir.size()) return false;
  if (path.compare(0, dir.size(), dir) != 0) return false;
  return path.size() == dir.size() || path[dir.size()] == '/';
}

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NoRandRule>());
  rules.push_back(std::make_unique<NoWallClockRule>());
  rules.push_back(std::make_unique<UnorderedIoIterRule>());
  rules.push_back(std::make_unique<PointerOrderRule>());
  rules.push_back(std::make_unique<TypedErrorsRule>());
  rules.push_back(std::make_unique<LockstepIoRule>());
  rules.push_back(std::make_unique<HeaderPragmaOnceRule>());
  rules.push_back(std::make_unique<HeaderUsingNamespaceRule>());
  rules.push_back(make_layering_rule());
  return rules;
}

std::vector<Finding> lint_file(
    const SourceFile& file, const std::vector<std::unique_ptr<Rule>>& rules) {
  std::vector<Finding> findings;
  for (const auto& rule : rules) {
    if (rule->applies(file.path)) rule->check(file, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  // Apply SIMDLINT-ALLOW: a directive suppresses matching findings on its
  // own line and the line directly below it.
  std::set<std::pair<std::size_t, std::string>> used;
  for (Finding& f : findings) {
    for (const std::size_t line : {f.line, f.line > 0 ? f.line - 1 : 0}) {
      const auto it = file.allows.find(line);
      if (it == file.allows.end()) continue;
      if (it->second.count(f.rule) > 0) {
        f.suppressed = true;
        used.insert({line, f.rule});
      } else if (it->second.count("*") > 0) {
        f.suppressed = true;
        used.insert({line, "*"});
      }
    }
  }

  // A directive that suppressed nothing is itself a finding: stale ALLOWs
  // hide future regressions.
  for (const auto& [line, ids] : file.allows) {
    for (const std::string& id : ids) {
      if (used.count({line, id}) > 0) continue;
      Finding f;
      f.rule = "unused-suppression";
      f.path = file.path;
      f.line = line;
      f.message = "SIMDLINT-ALLOW(" + id + ") matched no finding; remove it";
      f.excerpt = file.line_text(line);
      findings.push_back(std::move(f));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace simdlint
