// simdlint's reporting layer: text for humans, JSON for CI artifacts.
//
// Both reporters consume the same sorted finding list the engine produced;
// ordering is (path, line, rule), so output is byte-stable run to run — the
// linter holds itself to the determinism bar it enforces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simdlint/rules.hpp"

namespace simdlint {

struct ReportStats {
  std::size_t files = 0;
  std::size_t total = 0;       // all findings, including suppressed/baselined
  std::size_t suppressed = 0;  // via SIMDLINT-ALLOW
  std::size_t baselined = 0;   // matched the baseline file
  std::size_t active = 0;      // new findings: these fail the run
};

ReportStats tally(const std::vector<Finding>& findings, std::size_t files);

/// Human-readable report: one `path:line: [rule] message` block per finding,
/// active findings first-class, suppressed/baselined mentioned in summary.
void text_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats, bool verbose);

/// Machine-readable report for CI artifacts.
void json_report(std::ostream& out, const std::vector<Finding>& findings,
                 const ReportStats& stats);

/// SARIF 2.1.0 report (--format=sarif): active findings as level "error"
/// results, suppressed/baselined findings omitted — GitHub code scanning
/// renders these as PR-diff annotations.  Fingerprints ride along as
/// partialFingerprints so annotations survive line drift.
void sarif_report(std::ostream& out, const std::vector<Finding>& findings,
                  const ReportStats& stats);

std::string json_escape(const std::string& s);

}  // namespace simdlint
