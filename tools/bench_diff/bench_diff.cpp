// bench_diff: schema gate + per-key delta viewer for BENCH_engine.json.
//
// Perf numbers only stay honest if their *shape* is enforced: a harness edit
// that silently drops `host_hardware_threads` or renames a kernel key would
// otherwise go unnoticed until someone tried to compare entries months
// later.  This tool validates the committed BENCH_engine.json against the
// schema the perf harness writes (registered as the `lint.bench_schema`
// ctest) and, given a baseline entry (CI feeds it the previous committed
// revision via `git show`), prints a per-key numeric delta so perf
// regressions are visible directly in PR review.
//
// Deliberately standalone C++17 with a minimal built-in JSON reader — like
// simdlint, it must not depend on the library it gates, and the container
// has no third-party JSON dependency to lean on.
//
// Usage:
//   bench_diff <current.json>                      # schema validation only
//   bench_diff <current.json> --baseline <old.json>  # + per-key deltas
//
// Exit status: 0 when the schema is clean (deltas are informational and
// never fail the run), 1 on schema violations or unreadable input.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (objects keep file order).
// ---------------------------------------------------------------------------

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::vector<std::pair<std::string, ValuePtr>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return v.get();
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  ValuePtr parse(std::string& error) {
    ValuePtr v = value();
    skip_ws();
    if (!v) {
      error = detail_.empty() ? "parse error" : detail_;
      error += " at byte " + std::to_string(pos_);
      return nullptr;
    }
    if (pos_ != text_.size()) {
      error = "trailing garbage at byte " + std::to_string(pos_);
      return nullptr;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  ValuePtr value() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') {
      if (!literal("null")) return nullptr;
      auto v = std::make_unique<Value>();
      return v;
    }
    return number_value();
  }

  ValuePtr object() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
      ValuePtr key = string_value();
      if (!key || !consume(':')) return nullptr;
      ValuePtr val = value();
      if (!val) return nullptr;
      // Duplicate keys would make find() silently prefer the first writer
      // and the delta flattener report whichever survived — reject outright.
      for (const auto& [existing, unused] : v->object) {
        if (existing == key->string) {
          detail_ = "duplicate key \"" + key->string + "\"";
          return nullptr;
        }
      }
      v->object.emplace_back(std::move(key->string), std::move(val));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return nullptr;
    }
  }

  ValuePtr array() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      ValuePtr el = value();
      if (!el) return nullptr;
      v->array.push_back(std::move(el));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return nullptr;
    }
  }

  ValuePtr string_value() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return nullptr;  // \uXXXX etc: harness never emits these
        }
      }
      v->string.push_back(c);
    }
    if (pos_ >= text_.size()) return nullptr;
    ++pos_;  // closing '"'
    return v;
  }

  ValuePtr bool_value() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kBool;
    if (literal("true")) {
      v->boolean = true;
      return v;
    }
    if (literal("false")) {
      v->boolean = false;
      return v;
    }
    return nullptr;
  }

  ValuePtr number_value() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return nullptr;
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::kNumber;
    try {
      v->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return nullptr;
    }
    return v;
  }

  std::string text_;
  std::string detail_;  // specific rejection reason, e.g. the duplicated key
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema validation for the perf harness's BENCH_engine.json entry.
// ---------------------------------------------------------------------------

struct Checker {
  std::vector<std::string> errors;

  void fail(const std::string& path, const std::string& what) {
    errors.push_back(path + ": " + what);
  }

  const Value* need(const Value& obj, const std::string& path,
                    const std::string& key, Value::Kind kind) {
    const Value* v = obj.find(key);
    if (!v) {
      fail(path + "." + key, "missing required key");
      return nullptr;
    }
    if (v->kind != kind) {
      fail(path + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  void need_number(const Value& obj, const std::string& path,
                   const std::string& key) {
    need(obj, path, key, Value::Kind::kNumber);
  }

  // A flag the harness asserts before writing: if it ever reads false the
  // entry documents a broken determinism contract, which is a finding.
  void need_true(const Value& obj, const std::string& path,
                 const std::string& key) {
    const Value* v = need(obj, path, key, Value::Kind::kBool);
    if (v && !v->boolean) fail(path + "." + key, "must be true");
  }

  // Honesty cross-check: a recorded speedup must equal the ratio of the
  // recorded timings (2% slack for rounding in the harness's printf).
  void check_ratio(const Value& obj, const std::string& path,
                   const char* num_key, const char* den_key,
                   const char* ratio_key = "speedup") {
    const Value* n = obj.find(num_key);
    const Value* d = obj.find(den_key);
    const Value* s = obj.find(ratio_key);
    if (!n || !d || !s || d->number <= 0.0) return;
    const double ratio = n->number / d->number;
    if (std::fabs(ratio - s->number) > 0.02 * ratio + 1e-9)
      fail(path + "." + ratio_key,
           "does not match " + std::string(num_key) + "/" + den_key +
               " (claims " + std::to_string(s->number) + ", timings say " +
               std::to_string(ratio) + ")");
  }
};

void check_kernel(Checker& c, const std::string& path, const Value& k) {
  c.need_number(k, path, "lanes");
  if (k.find("expand_dominated")) {
    // Parity-documented kernel: raw timings only, no speedup claim.
    c.need_true(k, path, "expand_dominated");
    c.need_number(k, path, "per_node_ns");
    c.need_number(k, path, "batched_ns");
    if (k.find("speedup"))
      c.fail(path + ".speedup",
             "present alongside expand_dominated (drop the claim or the flag)");
  } else {
    c.need_number(k, path, "scalar_ns");
    c.need_number(k, path, "bitplane_ns");
    c.need_number(k, path, "speedup");
    c.check_ratio(k, path, "scalar_ns", "bitplane_ns");
  }
}

void check_schema(Checker& c, const Value& root) {
  if (root.kind != Value::Kind::kObject) {
    c.fail("$", "top level must be an object");
    return;
  }
  c.need(root, "$", "benchmark", Value::Kind::kString);
  c.need(root, "$", "quick_mode", Value::Kind::kBool);
  c.need_number(root, "$", "reps");
  c.need(root, "$", "timing", Value::Kind::kString);
  const Value* threads = root.find("host_hardware_threads");
  if (!threads || threads->kind != Value::Kind::kNumber)
    c.fail("$.host_hardware_threads", "missing or non-numeric");
  else if (threads->number < 1)
    c.fail("$.host_hardware_threads", "must be >= 1");
  c.need_number(root, "$", "grid_cells");
  c.need_true(root, "$", "results_identical_across_threads");

  if (const Value* sweeps = c.need(root, "$", "sweeps", Value::Kind::kArray)) {
    if (sweeps->array.empty()) c.fail("$.sweeps", "must not be empty");
    for (std::size_t i = 0; i < sweeps->array.size(); ++i) {
      const std::string path = "$.sweeps[" + std::to_string(i) + "]";
      const Value& s = *sweeps->array[i];
      if (s.kind != Value::Kind::kObject) {
        c.fail(path, "must be an object");
        continue;
      }
      for (const char* key :
           {"threads", "wall_s", "nodes", "nodes_per_s", "speedup_vs_1t"})
        c.need_number(s, path, key);
    }
  }

  if (const Value* e = c.need(root, "$", "engine", Value::Kind::kObject))
    for (const char* key : {"p", "nodes", "wall_s", "nodes_per_s"})
      c.need_number(*e, "$.engine", key);

  if (const Value* f = c.need(root, "$", "fault_hooks", Value::Kind::kObject)) {
    for (const char* key :
         {"unarmed_wall_s", "armed_empty_wall_s", "overhead_pct"})
      c.need_number(*f, "$.fault_hooks", key);
    c.need_true(*f, "$.fault_hooks", "results_identical");
  }

  if (const Value* s = c.need(root, "$", "sanitizer", Value::Kind::kObject))
    c.need(*s, "$.sanitizer", "compiled_in", Value::Kind::kBool);

  if (const Value* vb =
          c.need(root, "$", "vector_backend", Value::Kind::kObject)) {
    const Value* in =
        c.need(*vb, "$.vector_backend", "compiled_in", Value::Kind::kBool);
    if (in && in->boolean) {
      for (const char* key :
           {"engine_scalar_wall_s", "engine_vector_wall_s", "engine_speedup"})
        c.need_number(*vb, "$.vector_backend", key);
      c.need_true(*vb, "$.vector_backend", "results_identical");
      if (const Value* be = c.need(*vb, "$.vector_backend", "batch_expand",
                                   Value::Kind::kObject)) {
        if (be->object.empty())
          c.fail("$.vector_backend.batch_expand", "must not be empty");
        for (const auto& [name, dom] : be->object) {
          const std::string path = "$.vector_backend.batch_expand." + name;
          if (dom->kind != Value::Kind::kObject) {
            c.fail(path, "must be an object");
            continue;
          }
          for (const char* key : {"scalar_ns", "vector_ns", "speedup"})
            c.need_number(*dom, path, key);
          c.check_ratio(*dom, path, "scalar_ns", "vector_ns");
        }
      }
    }
  }

  if (const Value* sv = c.need(root, "$", "service", Value::Kind::kObject)) {
    c.need_number(*sv, "$.service", "requests");
    c.need_number(*sv, "$.service", "p99_sim_cycles");
    const Value* shed = sv->find("shed_rate");
    if (!shed || shed->kind != Value::Kind::kNumber)
      c.fail("$.service.shed_rate", "missing or non-numeric");
    else if (shed->number < 0.0 || shed->number > 1.0)
      c.fail("$.service.shed_rate", "must be a fraction in [0, 1]");
    c.need_true(*sv, "$.service", "responses_identical_across_threads");
    if (const Value* runs =
            c.need(*sv, "$.service", "runs", Value::Kind::kArray)) {
      if (runs->array.empty()) c.fail("$.service.runs", "must not be empty");
      for (std::size_t i = 0; i < runs->array.size(); ++i) {
        const std::string path = "$.service.runs[" + std::to_string(i) + "]";
        const Value& r = *runs->array[i];
        if (r.kind != Value::Kind::kObject) {
          c.fail(path, "must be an object");
          continue;
        }
        for (const char* key : {"threads", "wall_s", "qps"})
          c.need_number(r, path, key);
      }
    }
  }

  if (const Value* ks = c.need(root, "$", "kernels", Value::Kind::kObject)) {
    if (ks->object.empty()) c.fail("$.kernels", "must not be empty");
    for (const auto& [name, k] : ks->object) {
      const std::string path = "$.kernels." + name;
      if (k->kind != Value::Kind::kObject)
        c.fail(path, "must be an object");
      else
        check_kernel(c, path, *k);
    }
  }

  if (const Value* mp = c.need(root, "$", "mega_p", Value::Kind::kObject)) {
    if (const Value* bl = c.need(*mp, "$.mega_p", "bytes_per_lane",
                                 Value::Kind::kObject)) {
      const std::string path = "$.mega_p.bytes_per_lane";
      c.need(*bl, path, "workload", Value::Kind::kString);
      for (const char* key : {"descent_steps", "full_avg", "compact_avg",
                              "ratio", "full_peak", "compact_peak",
                              "peak_ratio"})
        c.need_number(*bl, path, key);
      c.check_ratio(*bl, path, "full_avg", "compact_avg", "ratio");
      c.check_ratio(*bl, path, "full_peak", "compact_peak", "peak_ratio");
      // The claim the compact representation is shipped for: a committed
      // entry below 4x documents a memory regression, which is a finding.
      const Value* ratio = bl->find("ratio");
      if (ratio && ratio->kind == Value::Kind::kNumber && ratio->number < 4.0)
        c.fail(path + ".ratio",
               "below the 4x the memory-bounded stacks are shipped for");
    }
    c.need_true(*mp, "$.mega_p", "pairs_identical_flat_vs_hier");
    if (const Value* sizes =
            c.need(*mp, "$.mega_p", "sizes", Value::Kind::kArray)) {
      if (sizes->array.empty()) c.fail("$.mega_p.sizes", "must not be empty");
      double prev_p = 0.0;
      for (std::size_t i = 0; i < sizes->array.size(); ++i) {
        const std::string path = "$.mega_p.sizes[" + std::to_string(i) + "]";
        const Value& m = *sizes->array[i];
        if (m.kind != Value::Kind::kObject) {
          c.fail(path, "must be an object");
          continue;
        }
        for (const char* key :
             {"p", "engine_full_avg_per_lane", "engine_compact_avg_per_lane",
              "engine_ratio", "lb_phase_flat_ns", "lb_phase_hier_ns",
              "lb_phase_speedup"})
          c.need_number(m, path, key);
        c.check_ratio(m, path, "engine_full_avg_per_lane",
                      "engine_compact_avg_per_lane", "engine_ratio");
        c.check_ratio(m, path, "lb_phase_flat_ns", "lb_phase_hier_ns",
                      "lb_phase_speedup");
        const Value* p = m.find("p");
        if (p && p->kind == Value::Kind::kNumber) {
          if (p->number <= prev_p)
            c.fail(path + ".p", "machine sizes must be strictly increasing");
          prev_p = p->number;
        }
      }
      // The whole point of the sweep: the last entry must reach 2^20 lanes.
      const Value& last = *sizes->array.back();
      const Value* p = last.find("p");
      if (p && p->kind == Value::Kind::kNumber && p->number < 1048576.0)
        c.fail("$.mega_p.sizes", "sweep must reach P = 2^20");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-key delta vs a baseline entry.
// ---------------------------------------------------------------------------

void flatten(const Value& v, const std::string& path,
             std::map<std::string, double>& out) {
  switch (v.kind) {
    case Value::Kind::kNumber:
      out[path] = v.number;
      break;
    case Value::Kind::kObject:
      for (const auto& [k, child] : v.object)
        flatten(*child, path.empty() ? k : path + "." + k, out);
      break;
    case Value::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i)
        flatten(*v.array[i], path + "[" + std::to_string(i) + "]", out);
      break;
    default:
      break;  // strings/bools don't delta
  }
}

void print_deltas(const Value& current, const Value& baseline) {
  std::map<std::string, double> now, old;
  flatten(current, "", now);
  flatten(baseline, "", old);
  std::printf("%-52s %14s %14s %9s\n", "key", "baseline", "current", "delta");
  for (const auto& [key, value] : now) {
    const auto it = old.find(key);
    if (it == old.end()) {
      std::printf("%-52s %14s %14.4g %9s\n", key.c_str(), "-", value, "(new)");
    } else if (it->second != value) {
      const double pct =
          it->second != 0.0 ? 100.0 * (value - it->second) / it->second : 0.0;
      std::printf("%-52s %14.4g %14.4g %+8.1f%%\n", key.c_str(), it->second,
                  value, pct);
    }
  }
  for (const auto& [key, value] : old)
    if (now.find(key) == now.end())
      std::printf("%-52s %14.4g %14s %9s\n", key.c_str(), value, "-", "(gone)");
}

ValuePtr load(const char* path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = std::string("cannot open ") + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parser(buf.str()).parse(error);
}

}  // namespace

int main(int argc, char** argv) {
  const char* current_path = nullptr;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!current_path) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: bench_diff <current.json> [--baseline <old.json>]\n");
      return 2;
    }
  }
  if (!current_path) {
    std::fprintf(stderr, "usage: bench_diff <current.json> [--baseline <old.json>]\n");
    return 2;
  }

  std::string error;
  ValuePtr current = load(current_path, error);
  if (!current) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", current_path, error.c_str());
    return 1;
  }

  Checker checker;
  check_schema(checker, *current);
  if (!checker.errors.empty()) {
    std::fprintf(stderr, "bench_diff: %s: %zu schema violation(s)\n",
                 current_path, checker.errors.size());
    for (const std::string& e : checker.errors)
      std::fprintf(stderr, "  %s\n", e.c_str());
    return 1;
  }
  std::printf("bench_diff: %s: schema OK\n", current_path);

  if (baseline_path) {
    ValuePtr baseline = load(baseline_path, error);
    if (!baseline) {
      // A missing or pre-schema baseline is not a failure: first-ever entry.
      std::printf("bench_diff: baseline %s unreadable (%s); skipping deltas\n",
                  baseline_path, error.c_str());
      return 0;
    }
    print_deltas(*current, *baseline);
  }
  return 0;
}
