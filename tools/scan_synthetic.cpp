// Raw seed scan for synthetic trees: prints the measured W for each seed at
// a fixed shape, so a workload can be picked by eye.
//
// Usage: scan_synthetic <depth> <fertility> <seed_base> <count> [budget]
#include <cstdint>
#include <iostream>
#include <string>

#include "synthetic/calibrate.hpp"

int main(int argc, char** argv) {
  using namespace simdts;
  if (argc < 5) {
    std::cerr << "usage: scan_synthetic <depth> <fertility> <seed_base> "
                 "<count> [budget]\n";
    return 1;
  }
  synthetic::Params shape;
  shape.max_depth = static_cast<std::uint16_t>(std::stoi(argv[1]));
  shape.fertility = std::stod(argv[2]);
  const std::uint64_t seed_base = std::stoull(argv[3]);
  const int count = std::stoi(argv[4]);
  const std::uint64_t budget = argc > 5 ? std::stoull(argv[5]) : 50000000ULL;

  for (int i = 0; i < count; ++i) {
    synthetic::Params p = shape;
    p.seed = seed_base + static_cast<std::uint64_t>(i);
    const std::uint64_t w = synthetic::measure(p, budget);
    std::cout << "seed=" << p.seed << " depth=" << p.max_depth
              << " fertility=" << p.fertility << " W="
              << (w == budget + 1 ? std::string("over-budget")
                                  : std::to_string(w))
              << std::endl;
  }
  return 0;
}
