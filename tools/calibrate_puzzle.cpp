// Calibration of 15-puzzle workloads.
//
// Scans seeded random-walk instances, measures each one's serial IDA* tree
// size W, and prints, for every target W from the paper's tables, the
// closest candidate as a ready-to-paste PuzzleWorkload initializer for
// src/puzzle/workloads.cpp.
//
// Usage: calibrate_puzzle [seed_base] [candidates] [walk_steps]
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "puzzle/board.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/serial.hpp"

namespace {

struct Candidate {
  std::uint64_t seed;
  simdts::search::SerialIdaResult result;
};

void print_workload(const std::string& name, const Candidate& c,
                    std::uint64_t paper_w, int walk_steps) {
  std::cout << "    {\"" << name << "\", " << c.seed << ", " << walk_steps
            << ", " << paper_w << ", " << c.result.total_expanded << ", "
            << c.result.final_expanded << ", " << c.result.solution_bound
            << ", " << c.result.goals_found << "},\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simdts;
  const std::uint64_t seed_base =
      argc > 1 ? std::stoull(argv[1]) : 202607ULL;
  const int candidates = argc > 2 ? std::stoi(argv[2]) : 64;
  const int walk_steps = argc > 3 ? std::stoi(argv[3]) : 120;
  // Paper W values (Table 2 and Table 5) plus a small ladder for tests.
  const std::uint64_t targets[] = {941852,  2067137, 3055171, 6073623,
                                   16110463};
  const std::uint64_t test_targets[] = {2000, 20000, 80000, 300000};

  const std::uint64_t budget = 40000000;  // reject monsters early
  std::vector<Candidate> pool;
  for (int i = 0; i < candidates; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    const puzzle::Board board = puzzle::random_walk(seed, walk_steps);
    const puzzle::FifteenPuzzle problem(board);
    auto result = search::serial_ida(problem, budget);
    if (result.solution_bound == search::kUnbounded) {
      std::cout << "# seed " << seed << ": over budget, skipped\n";
      continue;
    }
    std::cout << "# seed " << seed << ": W=" << result.total_expanded
              << " final=" << result.final_expanded
              << " len=" << result.solution_bound
              << " goals=" << result.goals_found << '\n';
    pool.push_back(Candidate{seed, std::move(result)});
  }

  auto pick = [&](std::uint64_t target) -> const Candidate* {
    const Candidate* best = nullptr;
    double best_err = 1e300;
    for (const auto& c : pool) {
      const double err = std::abs(
          std::log(static_cast<double>(c.result.total_expanded)) -
          std::log(static_cast<double>(target)));
      if (err < best_err) {
        best_err = err;
        best = &c;
      }
    }
    return best;
  };

  std::cout << "\n// ---- paper workloads ----\n";
  for (const std::uint64_t t : targets) {
    if (const Candidate* c = pick(t)) {
      print_workload("w-" + std::to_string(t), *c, t, walk_steps);
    }
  }
  std::cout << "\n// ---- test workloads ----\n";
  for (const std::uint64_t t : test_targets) {
    if (const Candidate* c = pick(t)) {
      print_workload("t-" + std::to_string(t), *c, 0, walk_steps);
    }
  }
  return 0;
}
