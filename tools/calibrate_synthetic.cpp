// Calibration of synthetic-tree workloads: for every target W, scans seeds
// and prints a ready-to-paste SyntheticWorkload initializer for
// src/synthetic/workloads.cpp.
//
// Usage: calibrate_synthetic [seed_base] [attempts]
#include <cstdint>
#include <iostream>
#include <string>

#include "synthetic/calibrate.hpp"

int main(int argc, char** argv) {
  using namespace simdts;
  const std::uint64_t seed_base = argc > 1 ? std::stoull(argv[1]) : 9000ULL;
  const std::uint32_t attempts =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 48;

  struct Target {
    const char* prefix;
    std::uint64_t w;
    std::uint16_t depth;
    double fertility;
    std::uint32_t attempts_override;  // 0: use the command-line value
  };
  // Depth grows with target size so trees stay deep and narrow enough to be
  // interestingly irregular at every scale; fertility is set so the expected
  // size (mean branching ~ 4 * fertility, capped at the depth) lands near the
  // target, and the seed scan does the rest.
  const Target targets[] = {
      {"syn", 1000, 14, 0.395, 0},     {"syn", 10000, 18, 0.400, 0},
      {"syn", 100000, 24, 0.388, 0},   {"syn", 400000, 28, 0.380, 0},
      {"syn", 1500000, 32, 0.380, 0},  {"syn", 6000000, 36, 0.375, 0},
      {"syn", 20000000, 40, 0.375, 16}, {"syn", 60000000, 44, 0.372, 10},
  };

  std::cout << "// ---- synthetic workloads ----\n";
  for (const auto& t : targets) {
    synthetic::Params shape;
    shape.max_depth = t.depth;
    shape.fertility = t.fertility;
    const std::uint32_t n =
        t.attempts_override != 0 ? t.attempts_override : attempts;
    const synthetic::Calibration c =
        synthetic::calibrate_to(t.w, shape, seed_base, n);
    std::cout << "    {\"" << t.prefix << '-' << t.w << "\", Params{"
              << c.params.seed << ", " << c.params.max_children << ", "
              << c.params.fertility << ", " << c.params.max_depth << "}, "
              << c.w << "},\n";
    std::cout.flush();
  }
  return 0;
}
